//! Online conformance oracle: checks the paper's invariants and service
//! commitments *while the simulation runs*, in O(1) per packet.
//!
//! The oracle is an opt-in cross-check of everything `lit-core` promises:
//!
//! * **Regulator invariants** (per hop): eligibility times of a session
//!   are non-decreasing, a held packet is released exactly at its
//!   eligibility instant, and the scheduler never saturates —
//!   `F̂ < F + L_MAX/C` (the lemma behind ineq. 12).
//! * **End-to-end delay** (ineq. 12/15, checked pathwise): every
//!   delivered packet satisfies `D_i − D^ref_i < β + α`, against the
//!   co-simulated reference server — valid for *any* arrival pattern,
//!   which is the paper's firewall property.
//! * **Delay jitter** (ineq. 17 and its no-control sibling): the running
//!   `max − min` delay never exceeds the empirical `D^ref_max` plus the
//!   session's spread constant.
//! * **Delay distribution** (ineq. 16, checked at drain time):
//!   `P(D > d) ≤ P(D^ref > d − β − α)` compared bin-by-bin on absolute
//!   counts, with the rounding slack taken in the sound direction.
//!
//! The per-session constants ([`SessionBounds`]) are installed after
//! `build` by `lit_core::install_oracle_bounds`, which knows the bound
//! formulas; `lit-net` only stores and checks them. Violations accumulate
//! into [`OracleTotals`], per-node/per-session counters, and a
//! process-global counter that survives the `Network` being dropped (so a
//! CLI can report totals after a sweep).

use lit_analysis::DurationHistogram;
use lit_sim::Time;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// What the oracle does when a check is evaluated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OracleMode {
    /// No checking (zero overhead; the default).
    #[default]
    Off,
    /// Count violations (totals, per-node/per-session counters, global).
    Count,
    /// Panic with a descriptive message on the first violation.
    Panic,
}

impl std::str::FromStr for OracleMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(OracleMode::Off),
            "count" => Ok(OracleMode::Count),
            "panic" => Ok(OracleMode::Panic),
            other => Err(format!("unknown oracle mode '{other}' (off|count|panic)")),
        }
    }
}

/// Configuration handed to [`crate::NetworkBuilder::oracle`].
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleConfig {
    /// Checking mode.
    pub mode: OracleMode,
}

impl OracleConfig {
    /// A config with the given mode.
    pub fn new(mode: OracleMode) -> Self {
        OracleConfig { mode }
    }

    /// The disabled config (same as `Default`).
    pub fn off() -> Self {
        OracleConfig::default()
    }
}

/// Per-session constants of the paper's bounds, in signed picoseconds.
///
/// Installed by `lit_core::install_oracle_bounds`; sessions without
/// installed bounds only get the structural regulator checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionBounds {
    /// `β + α` (eq. 13 + the signed α of ineq. 12): the pathwise bound on
    /// `D_i − D^ref_i` and the CCDF shift of ineq. 16.
    pub shift_ps: i128,
    /// The jitter bound minus `D^ref_max`: with jitter control
    /// `δ^N_max − d^N_max + α` (ineq. 17), without it
    /// `Δ^{1,N} − d^N_max + α`.
    pub jitter_spread_ps: i128,
}

/// The invariant a violation was recorded against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A session's eligibility times at one hop went backwards (eq. 6–7
    /// make `E` non-decreasing per session).
    EligibilityOrder,
    /// A held packet was released at a time other than its eligibility
    /// instant (or the discipline produced an eligibility in the past).
    ReleaseTime,
    /// `F̂ ≥ F + L_MAX/C`: the scheduler missed a deadline by more than
    /// the non-preemption allowance — saturation, which admission control
    /// is supposed to preclude.
    Lateness,
    /// A delivered packet had `D_i − D^ref_i ≥ β + α` (ineq. 12).
    DelayBound,
    /// Running jitter exceeded `D^ref_max` + the session's spread
    /// constant (ineq. 17 family).
    JitterBound,
    /// The drain-time histogram comparison of ineq. 16 failed.
    CcdfBound,
    /// An interleaved-regulator release exceeded the node's running
    /// shaping-delay ceiling (the executable form of the Thomas–Le Boudec
    /// service-curve property: FIFO + head gating can hold a packet no
    /// longer than the largest eligibility offset `E − a` queued at or
    /// ahead of it).
    ShapingBound,
    /// The interleaved regulator released out of FIFO order, released a
    /// not-yet-eligible head, or its release instants went backwards
    /// (releases must equal `max(last release, head E)`, non-decreasing).
    RegulatorFifo,
    /// Drain-time heavy-traffic sanity (Kruk et al.): a node's accumulated
    /// busy time diverged from the service time of the work it actually
    /// transmitted — the executor created or destroyed workload.
    WorkConservation,
}

impl ViolationKind {
    /// A stable label naming the violated inequality of the paper — the
    /// key used by the observability layer (metrics `violations` map and
    /// trace-event `tag`).
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::EligibilityOrder => "eligibility-order (eq. 6-7)",
            ViolationKind::ReleaseTime => "release-time (eq. 6-9)",
            ViolationKind::Lateness => "lateness (non-saturation lemma)",
            ViolationKind::DelayBound => "delay-bound (ineq. 12/15)",
            ViolationKind::JitterBound => "jitter-bound (ineq. 17)",
            ViolationKind::CcdfBound => "ccdf-bound (ineq. 16)",
            ViolationKind::ShapingBound => "shaping-bound (interleaved service curve)",
            ViolationKind::RegulatorFifo => "regulator-fifo (interleaved release order)",
            ViolationKind::WorkConservation => "work-conservation (heavy-traffic sanity)",
        }
    }
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ViolationKind::EligibilityOrder => "eligibility-order",
            ViolationKind::ReleaseTime => "release-time",
            ViolationKind::Lateness => "lateness",
            ViolationKind::DelayBound => "delay-bound",
            ViolationKind::JitterBound => "jitter-bound",
            ViolationKind::CcdfBound => "ccdf-bound",
            ViolationKind::ShapingBound => "shaping-bound",
            ViolationKind::RegulatorFifo => "regulator-fifo",
            ViolationKind::WorkConservation => "work-conservation",
        };
        f.write_str(s)
    }
}

/// Violation counts by kind, for one `Network`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleTotals {
    /// [`ViolationKind::EligibilityOrder`] count.
    pub eligibility_order: u64,
    /// [`ViolationKind::ReleaseTime`] count.
    pub release_time: u64,
    /// [`ViolationKind::Lateness`] count.
    pub lateness: u64,
    /// [`ViolationKind::DelayBound`] count.
    pub delay_bound: u64,
    /// [`ViolationKind::JitterBound`] count.
    pub jitter_bound: u64,
    /// [`ViolationKind::CcdfBound`] count.
    pub ccdf_bound: u64,
    /// [`ViolationKind::ShapingBound`] count.
    pub shaping_bound: u64,
    /// [`ViolationKind::RegulatorFifo`] count.
    pub regulator_fifo: u64,
    /// [`ViolationKind::WorkConservation`] count.
    pub work_conservation: u64,
}

impl OracleTotals {
    /// Sum over all kinds.
    pub fn total(&self) -> u64 {
        self.eligibility_order
            + self.release_time
            + self.lateness
            + self.delay_bound
            + self.jitter_bound
            + self.ccdf_bound
            + self.shaping_bound
            + self.regulator_fifo
            + self.work_conservation
    }

    fn slot(&mut self, kind: ViolationKind) -> &mut u64 {
        match kind {
            ViolationKind::EligibilityOrder => &mut self.eligibility_order,
            ViolationKind::ReleaseTime => &mut self.release_time,
            ViolationKind::Lateness => &mut self.lateness,
            ViolationKind::DelayBound => &mut self.delay_bound,
            ViolationKind::JitterBound => &mut self.jitter_bound,
            ViolationKind::CcdfBound => &mut self.ccdf_bound,
            ViolationKind::ShapingBound => &mut self.shaping_bound,
            ViolationKind::RegulatorFifo => &mut self.regulator_fifo,
            ViolationKind::WorkConservation => &mut self.work_conservation,
        }
    }
}

/// Violations recorded by every oracle in this process (all `Network`s,
/// all threads). Lets a CLI report a sweep's total after the networks
/// themselves are gone.
static GLOBAL_VIOLATIONS: AtomicU64 = AtomicU64::new(0);
/// Process-default mode (index into Off/Count/Panic), read by harnesses
/// that construct many networks from one CLI flag.
static GLOBAL_MODE: AtomicU8 = AtomicU8::new(0);

/// Total violations recorded process-wide.
pub fn global_violations() -> u64 {
    GLOBAL_VIOLATIONS.load(Ordering::Relaxed)
}

/// Reset the process-wide violation counter (test isolation).
pub fn reset_global_violations() {
    GLOBAL_VIOLATIONS.store(0, Ordering::Relaxed);
}

/// Fold `n` violations detected *outside* any live `Network` into the
/// process-wide counter — used by harness-level analytic cross-checks
/// (e.g. the heavy-traffic ρ-ladder comparisons, which only exist across
/// several finished runs) so a CLI sweep still exits non-zero.
pub fn record_external_violations(n: u64) {
    GLOBAL_VIOLATIONS.fetch_add(n, Ordering::Relaxed);
}

/// Set the process-default oracle mode (what `lit-repro --oracle` does).
pub fn set_global_mode(mode: OracleMode) {
    GLOBAL_MODE.store(mode as u8, Ordering::Relaxed);
}

/// The process-default oracle mode (defaults to `Off`).
pub fn global_mode() -> OracleMode {
    match GLOBAL_MODE.load(Ordering::Relaxed) {
        1 => OracleMode::Count,
        2 => OracleMode::Panic,
        _ => OracleMode::Off,
    }
}

/// Per-network oracle state.
pub(crate) struct OracleRt {
    pub(crate) mode: OracleMode,
    pub(crate) totals: OracleTotals,
    /// Installed bounds, indexed by session.
    pub(crate) bounds: Vec<Option<SessionBounds>>,
    /// Last eligibility time per `[session][hop]` (empty when disabled).
    pub(crate) last_eligible: Vec<Vec<Time>>,
    /// Whether the drain-time check already ran (guards the `Drop` hook).
    pub(crate) drained: bool,
    /// Whether the network runs the interleaved regulator backend. Under
    /// it the per-session lateness allowance no longer holds (a packet may
    /// additionally wait behind other sessions' holds), so the `Lateness`
    /// check is suspended and the `ShapingBound`/`RegulatorFifo` checks
    /// take over at the regulator.
    pub(crate) interleaved: bool,
}

impl OracleRt {
    pub(crate) fn new(cfg: OracleConfig, session_hops: &[usize]) -> Self {
        let enabled = cfg.mode != OracleMode::Off;
        OracleRt {
            mode: cfg.mode,
            totals: OracleTotals::default(),
            bounds: if enabled {
                vec![None; session_hops.len()]
            } else {
                Vec::new()
            },
            last_eligible: if enabled {
                session_hops.iter().map(|&h| vec![Time::ZERO; h]).collect()
            } else {
                Vec::new()
            },
            drained: false,
            interleaved: false,
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.mode != OracleMode::Off
    }

    /// Record one violation; panics in `Panic` mode. `detail` is only
    /// rendered when a message is actually needed.
    pub(crate) fn violate(&mut self, kind: ViolationKind, detail: impl FnOnce() -> String) {
        *self.totals.slot(kind) += 1;
        GLOBAL_VIOLATIONS.fetch_add(1, Ordering::Relaxed);
        if self.mode == OracleMode::Panic {
            panic!("conformance oracle: {kind}: {}", detail());
        }
    }
}

/// Ineq. 16 on absolute counts: for every threshold `d` (taken at the
/// e2e histogram's bin lower edges), the number of delivered packets with
/// `D > d` must not exceed the number of injected packets with
/// `D^ref > d − shift`. Binning slack is taken in the sound direction —
/// the left side is an under-count (bins strictly above `d`), the right
/// an over-count (every bin not certainly ≤ `d − shift`) — so a reported
/// violation is a true counter-example, never a rounding artifact.
///
/// Returns the first offending threshold as `(d_ps, lhs, rhs)`.
pub(crate) fn ccdf_shift_violation(
    e2e: &DurationHistogram,
    reference: &DurationHistogram,
    shift_ps: i128,
) -> Option<(i128, u64, u64)> {
    let w = e2e.bin_width().as_ps() as i128;
    debug_assert_eq!(e2e.bin_width(), reference.bin_width());
    let eb = e2e.bin_counts();
    let rb = reference.bin_counts();
    // suffix[k] = packets delivered in bins k.. (+ overflow).
    let mut suffix = vec![e2e.overflow_count(); eb.len() + 1];
    for k in (0..eb.len()).rev() {
        suffix[k] = suffix[k + 1] + eb[k];
    }
    // prefix[m] = reference samples certainly ≤ m·w (bins 0..m).
    let mut prefix = vec![0u64; rb.len() + 1];
    for m in 0..rb.len() {
        prefix[m + 1] = prefix[m] + rb[m];
    }
    let rtotal = reference.count();
    for k in 0..eb.len() {
        // Threshold d = k·w; delivered packets in bins ≥ k+1 (and the
        // overflow bucket) have D ≥ (k+1)·w > d, strictly.
        let lhs = suffix[k + 1];
        if lhs == 0 {
            break; // suffix counts only shrink with k
        }
        let t = k as i128 * w - shift_ps;
        let rhs = if t < 0 {
            rtotal
        } else {
            // Bins m with upper edge (m+1)·w ≤ t hold samples certainly
            // not exceeding t.
            let m = ((t / w) as usize).min(rb.len());
            rtotal - prefix[m]
        };
        if lhs > rhs {
            return Some((k as i128 * w, lhs, rhs));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use lit_sim::Duration;

    fn hist(samples_ms: &[u64]) -> DurationHistogram {
        let mut h = DurationHistogram::new(Duration::from_ms(1), 64);
        for &s in samples_ms {
            h.record(Duration::from_ms(s));
        }
        h
    }

    #[test]
    fn ccdf_shift_holds_when_delays_within_shift_of_reference() {
        // D_i = Dref_i + 3 ms < Dref_i + 5 ms shift.
        let e2e = hist(&[13, 14, 18]);
        let reference = hist(&[10, 11, 15]);
        let shift = Duration::from_ms(5).as_ps() as i128;
        assert_eq!(ccdf_shift_violation(&e2e, &reference, shift), None);
    }

    #[test]
    fn ccdf_shift_detects_excess_mass() {
        // One packet delayed 20 ms past its reference: violates a 5 ms
        // shift at thresholds between the reference tail and the sample.
        let e2e = hist(&[30]);
        let reference = hist(&[10]);
        let shift = Duration::from_ms(5).as_ps() as i128;
        let v = ccdf_shift_violation(&e2e, &reference, shift);
        assert!(v.is_some());
        let (d, lhs, rhs) = v.unwrap();
        assert_eq!((lhs, rhs), (1, 0));
        assert!(d >= Duration::from_ms(16).as_ps() as i128, "d={d}");
    }

    #[test]
    fn ccdf_shift_binning_slack_never_false_positives() {
        // Samples right at the strictness margin: D = Dref + shift − ε is
        // legal; with ε below a bin width the count comparison must still
        // pass thanks to the conservative rounding.
        let mut e2e = DurationHistogram::new(Duration::from_ms(1), 64);
        let mut reference = DurationHistogram::new(Duration::from_ms(1), 64);
        let shift = Duration::from_ms(5).as_ps() as i128;
        for i in 0..50u64 {
            let r = Duration::from_us(i * 137);
            reference.record(r);
            e2e.record(r + Duration::from_us(4_999)); // just under 5 ms more
        }
        assert_eq!(ccdf_shift_violation(&e2e, &reference, shift), None);
    }

    #[test]
    fn ccdf_shift_handles_overflow_bins() {
        let mut e2e = DurationHistogram::new(Duration::from_ms(1), 4);
        let mut reference = DurationHistogram::new(Duration::from_ms(1), 4);
        // Both in overflow, within shift: fine.
        reference.record(Duration::from_ms(100));
        e2e.record(Duration::from_ms(102));
        let shift = Duration::from_ms(5).as_ps() as i128;
        assert_eq!(ccdf_shift_violation(&e2e, &reference, shift), None);
        // Overflowed delivery with an in-range reference 50 ms earlier:
        // must be flagged even though bins can't resolve the overflow.
        let e2e2 = hist(&[60]);
        let mut r2 = DurationHistogram::new(Duration::from_ms(1), 8);
        r2.record(Duration::from_ms(1));
        assert!(ccdf_shift_violation(&e2e2, &r2, shift).is_some());
    }

    #[test]
    fn mode_parses() {
        assert_eq!("off".parse(), Ok(OracleMode::Off));
        assert_eq!("count".parse(), Ok(OracleMode::Count));
        assert_eq!("panic".parse(), Ok(OracleMode::Panic));
        assert!("loud".parse::<OracleMode>().is_err());
    }

    #[test]
    fn totals_sum_and_slots() {
        let mut t = OracleTotals::default();
        *t.slot(ViolationKind::Lateness) += 2;
        *t.slot(ViolationKind::CcdfBound) += 1;
        assert_eq!(t.total(), 3);
        assert_eq!(t.lateness, 2);
        assert_eq!(t.ccdf_bound, 1);
    }

    #[test]
    fn global_mode_roundtrip() {
        set_global_mode(OracleMode::Count);
        assert_eq!(global_mode(), OracleMode::Count);
        set_global_mode(OracleMode::Off);
        assert_eq!(global_mode(), OracleMode::Off);
    }
}
