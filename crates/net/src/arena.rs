//! Generational packet arena: allocation-free packet storage for the
//! executor's hot loop.
//!
//! Every packet in flight inside one shard lives in one [`PacketArena`]
//! slot; events and eligible queues carry a dense 8-byte [`PacketRef`]
//! instead of the ~80-byte [`Packet`] itself, so event-set entries stay
//! small and moving them never copies scheduler scratch fields around.
//! Slots are recycled through an in-place free list on delivery, drop, or
//! cross-shard handoff, so steady-state simulation performs **zero**
//! allocator traffic: capacity grows to the high-water mark of
//! concurrently live packets and then stays put, the same bounded-churn
//! contract [`crate::IdSlab`] gives session ids.
//!
//! References are *generational*: each slot carries a generation counter
//! bumped on free, and a [`PacketRef`] embeds the generation it was minted
//! with. A stale reference (use after free/take) is therefore detected
//! instead of silently aliasing an unrelated packet — `get`/`take` return
//! `None` and the executor's debug assertions catch the wiring bug.

use crate::packet::Packet;

/// A dense generational handle into a [`PacketArena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketRef {
    idx: u32,
    gen: u32,
}

impl PacketRef {
    /// The dense slot index (stable while the packet is live).
    #[inline]
    pub fn index(self) -> usize {
        self.idx as usize
    }
}

/// One arena slot: the packet payload plus the slot's current generation.
/// A slot is free iff its index is on the free list; `gen` is bumped when
/// the slot is freed, invalidating outstanding references.
struct Slot {
    gen: u32,
    pkt: Packet,
}

/// A slab of packets with generational references and an in-place free
/// list. See the module docs for the lifetime discipline.
pub struct PacketArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

impl Default for PacketArena {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        PacketArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// An empty arena with room for `cap` packets before any reallocation.
    pub fn with_capacity(cap: usize) -> Self {
        PacketArena {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Store `pkt`, reusing a freed slot if one exists.
    pub fn alloc(&mut self, pkt: Packet) -> PacketRef {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            // lit-lint: allow(no-panic-hot-path, "free-list entries are indices of slots this arena pushed; they never dangle")
            let slot = &mut self.slots[idx as usize];
            slot.pkt = pkt;
            return PacketRef { idx, gen: slot.gen };
        }
        let idx = self.slots.len() as u32;
        self.slots.push(Slot { gen: 0, pkt });
        PacketRef { idx, gen: 0 }
    }

    /// Read a live packet; `None` if the reference is stale.
    #[inline]
    pub fn get(&self, r: PacketRef) -> Option<&Packet> {
        self.slots
            .get(r.idx as usize)
            .filter(|s| s.gen == r.gen)
            .map(|s| &s.pkt)
    }

    /// Mutate a live packet; `None` if the reference is stale.
    #[inline]
    pub fn get_mut(&mut self, r: PacketRef) -> Option<&mut Packet> {
        self.slots
            .get_mut(r.idx as usize)
            .filter(|s| s.gen == r.gen)
            .map(|s| &mut s.pkt)
    }

    /// Remove a live packet, returning it by value and recycling its slot.
    /// `None` (and no state change) if the reference is stale.
    pub fn take(&mut self, r: PacketRef) -> Option<Packet> {
        let slot = self
            .slots
            .get_mut(r.idx as usize)
            .filter(|s| s.gen == r.gen)?;
        slot.gen = slot.gen.wrapping_add(1);
        self.live -= 1;
        self.free.push(r.idx);
        Some(slot.pkt)
    }

    /// Packets currently live.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Slots ever created — the high-water mark of concurrent liveness,
    /// *not* the total number of packets that passed through.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::SessionId;
    use lit_sim::Time;

    fn pkt(seq: u64) -> Packet {
        Packet::new(SessionId(1), seq, 424, Time::from_ms(seq))
    }

    #[test]
    fn alloc_get_take_roundtrip() {
        let mut a = PacketArena::new();
        let r1 = a.alloc(pkt(1));
        let r2 = a.alloc(pkt(2));
        assert_eq!(a.live(), 2);
        assert_eq!(a.get(r1).unwrap().seq, 1);
        assert_eq!(a.get(r2).unwrap().seq, 2);
        let p = a.take(r1).unwrap();
        assert_eq!(p.seq, 1);
        assert_eq!(a.live(), 1);
        // Stale after take: every accessor refuses the old reference.
        assert!(a.get(r1).is_none());
        assert!(a.take(r1).is_none());
        assert_eq!(a.live(), 1, "stale take must not corrupt the count");
    }

    #[test]
    fn recycled_slot_gets_fresh_generation() {
        let mut a = PacketArena::new();
        let r1 = a.alloc(pkt(1));
        a.take(r1).unwrap();
        let r2 = a.alloc(pkt(2));
        // Same slot, new generation: old handle dead, new handle live.
        assert_eq!(r1.index(), r2.index());
        assert_ne!(r1, r2);
        assert!(a.get(r1).is_none());
        assert_eq!(a.get(r2).unwrap().seq, 2);
    }

    #[test]
    fn churn_capacity_stays_bounded() {
        // 100k alloc/free cycles with at most 64 live packets: capacity
        // must stop at the high-water mark, like IdSlab's id recycling.
        let mut a = PacketArena::new();
        let mut live = Vec::new();
        for i in 0..100_000u64 {
            live.push((i, a.alloc(pkt(i))));
            if live.len() == 64 {
                for (seq, r) in live.drain(..) {
                    assert_eq!(a.take(r).map(|p| p.seq), Some(seq));
                }
            }
        }
        assert!(
            a.capacity() <= 64,
            "capacity {} grew past the high-water mark",
            a.capacity()
        );
        assert_eq!(a.live(), live.len());
    }

    #[test]
    fn get_mut_writes_through() {
        let mut a = PacketArena::new();
        let r = a.alloc(pkt(7));
        a.get_mut(r).unwrap().hop = 3;
        assert_eq!(a.get(r).unwrap().hop, 3);
    }
}
