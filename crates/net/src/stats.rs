//! Per-session and per-node measurements, mirroring what the paper plots.
//!
//! * end-to-end delay per delivered packet (max, min, jitter = max − min,
//!   full histogram — Figs. 7–11, 14–17);
//! * co-simulated **reference-server** delay per packet (eq. 1) — the
//!   "simulated upper bound" curves of Figs. 9–11 and the right-hand side
//!   of every bound check;
//! * per-hop buffer occupancy in bits, sampled exactly as the paper does:
//!   "at the moment the last bit of a packet arrives at a server node",
//!   counting the packet under transmission (Figs. 12–13);
//! * per-node link utilization and scheduler lateness (finish − deadline),
//!   the saturation diagnostic.

use lit_analysis::{BatchMeans, BusyFraction, DurationHistogram};
use lit_sim::{Duration, Time};

/// Sizing knobs for the statistics collectors.
#[derive(Clone, Copy, Debug)]
pub struct StatsConfig {
    /// Bin width of the end-to-end and reference delay histograms.
    pub delay_bin: Duration,
    /// Number of delay bins (delays beyond land in overflow but still
    /// count toward max/jitter exactly).
    pub delay_bins: usize,
    /// Bin width, in bits, of the buffer-occupancy histograms.
    pub buffer_bin_bits: u64,
    /// Number of buffer bins.
    pub buffer_bins: usize,
    /// Keep the **last** this-many per-packet delivery records per
    /// session (0 = off, the default). Each record is ~48 bytes; the log
    /// is a ring, so memory is bounded regardless of run length.
    pub delivery_log_cap: usize,
}

impl Default for StatsConfig {
    fn default() -> Self {
        StatsConfig {
            delay_bin: Duration::from_us(250),
            delay_bins: 4_000, // covers 1 s of delay
            buffer_bin_bits: 424,
            buffer_bins: 256,
            delivery_log_cap: 0,
        }
    }
}

impl StatsConfig {
    /// Minimal-footprint sizing for scale runs with very many sessions
    /// (e.g. the 1k→1M scaling curve): coarse delay bins covering the
    /// same 1 s span, a handful of buffer bins, no delivery log. Maxima,
    /// jitter, and counts stay exact — only distribution resolution is
    /// traded — and per-session memory drops from ~tens of kB to ~1 kB.
    pub fn compact() -> Self {
        StatsConfig {
            delay_bin: Duration::from_ms(20),
            delay_bins: 50, // covers the same 1 s of delay, coarsely
            buffer_bin_bits: 424 * 16,
            buffer_bins: 8,
            delivery_log_cap: 0,
        }
    }
}

/// One delivered packet, as recorded by the optional delivery log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Per-session packet index (1-based, the paper's `i`).
    pub seq: u64,
    /// Injection instant `t¹_i`.
    pub created: Time,
    /// Delivery instant (past the last node, incl. final propagation).
    pub delivered: Time,
    /// The packet's co-simulated reference-server delay `D^ref_i`.
    pub ref_delay: Duration,
}

impl DeliveryRecord {
    /// End-to-end delay of this packet.
    pub fn delay(&self) -> Duration {
        self.delivered - self.created
    }

    /// Pathwise excess `D_i − D^ref_i` in signed picoseconds.
    pub fn excess_ps(&self) -> i128 {
        self.delay().as_ps() as i128 - self.ref_delay.as_ps() as i128
    }
}

/// Histogram over buffer occupancy samples (bits), with exact maximum.
#[derive(Clone, Debug)]
pub struct OccupancyHistogram {
    bin_bits: u64,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    max_bits: u64,
}

impl OccupancyHistogram {
    /// `nbins` bins of `bin_bits` bits each.
    pub fn new(bin_bits: u64, nbins: usize) -> Self {
        assert!(bin_bits > 0 && nbins > 0, "occupancy histogram: empty");
        OccupancyHistogram {
            bin_bits,
            bins: vec![0; nbins],
            overflow: 0,
            count: 0,
            max_bits: 0,
        }
    }

    /// Record one occupancy sample.
    pub fn record(&mut self, bits: u64) {
        self.count += 1;
        self.max_bits = self.max_bits.max(bits);
        let idx = (bits / self.bin_bits) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact largest sample in bits.
    pub fn max_bits(&self) -> u64 {
        self.max_bits
    }

    /// `(bin_lower_edge_bits, fraction)` for all non-empty bins.
    pub fn pdf(&self) -> Vec<(u64, f64)> {
        let n = self.count.max(1) as f64;
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u64 * self.bin_bits, c as f64 / n))
            .collect()
    }

    /// Merge another histogram with identical bin layout into this one
    /// (used to pool replica runs into one distribution). Counts
    /// saturate at `u64::MAX` rather than wrapping, so pathological
    /// pooling degrades the distribution instead of corrupting it.
    ///
    /// # Panics
    /// Panics on mismatched bin width or bin count.
    pub fn merge(&mut self, other: &OccupancyHistogram) {
        assert_eq!(self.bin_bits, other.bin_bits, "merge: bin width mismatch");
        assert_eq!(
            self.bins.len(),
            other.bins.len(),
            "merge: bin count mismatch"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a = a.saturating_add(*b);
        }
        self.overflow = self.overflow.saturating_add(other.overflow);
        self.count = self.count.saturating_add(other.count);
        self.max_bits = self.max_bits.max(other.max_bits);
    }

    /// Upper estimate of `P(occupancy > bits)`: samples in the bin
    /// containing `bits` count as exceeding it (conservative in the
    /// direction needed when comparing against analytic upper bounds).
    pub fn ccdf_at(&self, bits: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let idx = (bits / self.bin_bits) as usize;
        let below: u64 = self.bins.iter().take(idx.min(self.bins.len())).sum();
        (self.count - below) as f64 / self.count as f64
    }

    /// Empirical `P(occupancy > bits)` at each bin upper edge.
    pub fn ccdf(&self) -> Vec<(u64, f64)> {
        if self.count == 0 {
            return Vec::new();
        }
        let n = self.count as f64;
        let mut remaining = self.count;
        let mut out = Vec::new();
        for (i, &c) in self.bins.iter().enumerate() {
            remaining -= c;
            if c > 0 || i == 0 {
                out.push(((i as u64 + 1) * self.bin_bits, remaining as f64 / n));
            }
            if remaining == 0 {
                break;
            }
        }
        if self.overflow > 0 {
            out.push((self.max_bits, 0.0));
        }
        out
    }
}

/// Everything measured about one session.
#[derive(Clone, Debug)]
pub struct SessionStats {
    /// Packets injected at the first node.
    pub injected: u64,
    /// Packets delivered past the last node (including final propagation).
    pub delivered: u64,
    /// End-to-end delay distribution (delivery − creation).
    pub e2e: DurationHistogram,
    /// Co-simulated reference-server delay distribution (eq. 1 with the
    /// session's reserved rate, fed by the same arrivals).
    pub reference: DurationHistogram,
    /// Per-hop buffer occupancy distributions, one per route hop.
    pub buffer: Vec<OccupancyHistogram>,
    /// Current per-hop occupancy in bits (bookkeeping).
    pub(crate) occupancy_bits: Vec<u64>,
    /// Largest observed `D_i − D_i^ref` over delivered packets, in signed
    /// picoseconds. The pathwise content of ineq. (12): under
    /// Leave-in-Time this never reaches `β + α`.
    pub max_excess_ps: i128,
    /// Batch-means accumulator over end-to-end delays (seconds), for
    /// autocorrelation-robust confidence intervals on the mean.
    pub delay_batches: BatchMeans,
    /// Ring of the most recent deliveries (empty unless
    /// [`StatsConfig::delivery_log_cap`] > 0).
    pub deliveries: std::collections::VecDeque<DeliveryRecord>,
    pub(crate) delivery_cap: usize,
    /// Conformance-oracle violations attributed to this session (delay,
    /// jitter and CCDF bound checks); always 0 when the oracle is off.
    pub oracle_violations: u64,
}

impl SessionStats {
    pub(crate) fn new(cfg: &StatsConfig, hops: usize) -> Self {
        SessionStats {
            injected: 0,
            delivered: 0,
            e2e: DurationHistogram::new(cfg.delay_bin, cfg.delay_bins),
            reference: DurationHistogram::new(cfg.delay_bin, cfg.delay_bins),
            buffer: (0..hops)
                .map(|_| OccupancyHistogram::new(cfg.buffer_bin_bits, cfg.buffer_bins))
                .collect(),
            occupancy_bits: vec![0; hops],
            max_excess_ps: i128::MIN,
            delay_batches: BatchMeans::default_config(),
            deliveries: std::collections::VecDeque::new(),
            delivery_cap: cfg.delivery_log_cap,
            oracle_violations: 0,
        }
    }

    /// A packet's last bit arrived at `hop`: grow the occupancy gauge and
    /// record the new level — counting the arriving packet, which is how
    /// the paper samples buffer occupancy. Out-of-range hops (a wiring
    /// bug) record nothing rather than panicking mid-simulation.
    pub(crate) fn occupy(&mut self, hop: usize, len_bits: u64) {
        if let (Some(occ), Some(hist)) =
            (self.occupancy_bits.get_mut(hop), self.buffer.get_mut(hop))
        {
            *occ += len_bits;
            hist.record(*occ);
        }
    }

    /// The packet's last bit left `hop`: release its bits from the gauge.
    pub(crate) fn release(&mut self, hop: usize, len_bits: u64) {
        if let Some(occ) = self.occupancy_bits.get_mut(hop) {
            *occ = occ.saturating_sub(len_bits);
        }
    }

    /// Fold another partial accumulator for the *same* session into this
    /// one. Used by the sharded executor: each shard accumulates only the
    /// fields its own hops write (injection fields on the first-hop
    /// shard, delivery fields on the last-hop shard, per-hop occupancy on
    /// the hop's owner), so partials are field-disjoint and absorbing
    /// them in any fixed order reconstructs exactly the scalar totals.
    pub(crate) fn absorb(&mut self, o: &SessionStats) {
        self.injected += o.injected;
        self.delivered += o.delivered;
        self.e2e.merge(&o.e2e);
        self.reference.merge(&o.reference);
        for (a, b) in self.buffer.iter_mut().zip(&o.buffer) {
            a.merge(b);
        }
        for (a, b) in self.occupancy_bits.iter_mut().zip(&o.occupancy_bits) {
            *a += *b;
        }
        self.max_excess_ps = self.max_excess_ps.max(o.max_excess_ps);
        // Delivery-derived batch means live entirely on the last-hop
        // shard; adopt the one non-empty accumulator.
        if o.delay_batches.count() > 0 && self.delay_batches.count() == 0 {
            self.delay_batches = o.delay_batches.clone();
        }
        for r in &o.deliveries {
            self.log_delivery(*r);
        }
        self.oracle_violations += o.oracle_violations;
    }

    /// Append to the delivery ring (no-op when the log is off).
    pub(crate) fn log_delivery(&mut self, rec: DeliveryRecord) {
        if self.delivery_cap == 0 {
            return;
        }
        if self.deliveries.len() == self.delivery_cap {
            self.deliveries.pop_front();
        }
        self.deliveries.push_back(rec);
    }

    /// Largest observed end-to-end delay.
    pub fn max_delay(&self) -> Option<Duration> {
        self.e2e.max()
    }

    /// Observed end-to-end jitter: max − min delay over delivered packets
    /// (the paper's definition of `J`).
    pub fn jitter(&self) -> Option<Duration> {
        self.e2e.spread()
    }

    /// Mean end-to-end delay.
    pub fn mean_delay(&self) -> Option<Duration> {
        self.e2e.mean()
    }

    /// Largest observed reference-server delay (the empirical
    /// `D^ref_max`).
    pub fn max_reference_delay(&self) -> Option<Duration> {
        self.reference.max()
    }

    /// Largest observed `D_i − D_i^ref` (signed ps), if any packet was
    /// delivered.
    pub fn max_excess(&self) -> Option<i128> {
        (self.delivered > 0).then_some(self.max_excess_ps)
    }

    /// Batch-means ~95 % confidence interval on the mean end-to-end delay
    /// `(mean, half_width)`, if enough batches completed.
    pub fn mean_delay_ci(&self) -> Option<(Duration, Duration)> {
        let (m, h) = self.delay_batches.interval()?;
        // lit-lint: allow(raw-time-arithmetic, "reporting boundary: a batch-means CI is float statistics converted back to a Duration for display")
        Some((Duration::from_secs_f64(m), Duration::from_secs_f64(h)))
    }
}

/// Everything measured about one node.
#[derive(Clone, Debug)]
pub struct NodeStats {
    /// Link busy-time tracker.
    pub busy: BusyFraction,
    /// Packets transmitted.
    pub transmitted: u64,
    /// Bits transmitted.
    pub bits_transmitted: u64,
    /// Largest observed `finish − deadline` in picoseconds (negative =
    /// every packet beat its deadline). For deadline disciplines this is
    /// the scheduler-saturation diagnostic: Leave-in-Time guarantees
    /// `F̂ < F + L_MAX/C`.
    pub max_lateness_ps: i128,
    /// Conformance-oracle violations attributed to this node (regulator
    /// and lateness checks); always 0 when the oracle is off.
    pub oracle_violations: u64,
}

impl NodeStats {
    pub(crate) fn new() -> Self {
        NodeStats {
            busy: BusyFraction::new(),
            transmitted: 0,
            bits_transmitted: 0,
            max_lateness_ps: i128::MIN,
            oracle_violations: 0,
        }
    }

    /// Measured utilization over `[0, now]`.
    pub fn utilization_at(&self, now: Time) -> f64 {
        self.busy.fraction_at(now)
    }

    /// Largest `finish − deadline`, if any packet was transmitted.
    pub fn max_lateness(&self) -> Option<i128> {
        (self.transmitted > 0).then_some(self.max_lateness_ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_histogram_tracks_max_exactly() {
        let mut h = OccupancyHistogram::new(424, 8);
        h.record(0);
        h.record(424);
        h.record(425);
        h.record(9_999); // overflow
        assert_eq!(h.count(), 4);
        assert_eq!(h.max_bits(), 9_999);
        let pdf = h.pdf();
        assert_eq!(pdf[0], (0, 0.25)); // the single 0-bit sample
                                       // 424 and 425 land in bin 1.
        assert_eq!(pdf[1], (424, 0.5));
    }

    #[test]
    fn occupancy_ccdf_monotone() {
        let mut h = OccupancyHistogram::new(100, 50);
        for i in 0..1000u64 {
            h.record(i * 7 % 4000);
        }
        let c = h.ccdf();
        for w in c.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(c.last().unwrap().1, 0.0);
    }

    #[test]
    fn occupancy_merge_pools_counts_and_max() {
        let mut a = OccupancyHistogram::new(100, 4);
        a.record(50);
        a.record(150);
        let mut b = OccupancyHistogram::new(100, 4);
        b.record(150);
        b.record(999); // overflow
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max_bits(), 999);
        let pdf = a.pdf();
        assert_eq!(pdf[0], (0, 0.25));
        assert_eq!(pdf[1], (100, 0.5));
        // Merging an empty histogram is a no-op.
        let before = a.pdf();
        a.merge(&OccupancyHistogram::new(100, 4));
        assert_eq!(a.pdf(), before);
    }

    #[test]
    #[should_panic(expected = "bin width mismatch")]
    fn occupancy_merge_rejects_mismatched_layout() {
        let mut a = OccupancyHistogram::new(100, 4);
        a.merge(&OccupancyHistogram::new(200, 4));
    }

    #[test]
    fn session_stats_jitter_is_spread() {
        let cfg = StatsConfig::default();
        let mut s = SessionStats::new(&cfg, 2);
        s.e2e.record(Duration::from_ms(10));
        s.e2e.record(Duration::from_ms(4));
        s.e2e.record(Duration::from_ms(7));
        assert_eq!(s.jitter(), Some(Duration::from_ms(6)));
        assert_eq!(s.max_delay(), Some(Duration::from_ms(10)));
        assert_eq!(s.buffer.len(), 2);
    }

    #[test]
    fn node_stats_lateness_gate() {
        let n = NodeStats::new();
        assert_eq!(n.max_lateness(), None);
    }

    #[test]
    fn node_stats_lateness_keeps_sign() {
        // Lateness is signed: a node whose every finish beats its
        // deadline reports a *negative* maximum — collapsing it to zero
        // would hide exactly the margin the paper's invariant promises.
        let mut n = NodeStats::new();
        n.transmitted = 1;
        n.max_lateness_ps = -42;
        assert_eq!(n.max_lateness(), Some(-42));
        n.transmitted = 2;
        n.max_lateness_ps = n.max_lateness_ps.max(7);
        assert_eq!(n.max_lateness(), Some(7));
        // The empty-node sentinel (i128::MIN) never leaks out.
        let empty = NodeStats::new();
        assert!(empty.max_lateness().is_none());
    }

    #[test]
    fn occupancy_ccdf_at_empty_histogram_is_zero() {
        let h = OccupancyHistogram::new(424, 8);
        assert_eq!(h.ccdf_at(0), 0.0);
        assert_eq!(h.ccdf_at(u64::MAX), 0.0);
        assert!(h.pdf().is_empty());
        assert!(h.ccdf().iter().all(|&(_, p)| p == 0.0));
    }

    #[test]
    fn occupancy_ccdf_at_single_bin() {
        // One bin: every sample is either in it or in overflow; ccdf_at
        // conservatively counts the query's own bin as exceeding.
        let mut h = OccupancyHistogram::new(100, 1);
        h.record(10);
        h.record(50);
        h.record(250); // overflow
        assert_eq!(h.ccdf_at(0), 1.0); // query inside bin 0: all 3 count
        assert_eq!(h.ccdf_at(99), 1.0);
        assert_eq!(h.ccdf_at(100), 1.0 / 3.0); // past bin 0: overflow only
        assert_eq!(h.ccdf_at(u64::MAX), 1.0 / 3.0);
    }

    #[test]
    fn occupancy_merge_saturates_instead_of_wrapping() {
        let mut a = OccupancyHistogram::new(100, 2);
        a.bins[0] = u64::MAX - 1;
        a.count = u64::MAX - 1;
        a.overflow = u64::MAX;
        let mut b = OccupancyHistogram::new(100, 2);
        b.record(10);
        b.record(10);
        b.record(500); // overflow
        a.merge(&b);
        assert_eq!(a.bins[0], u64::MAX);
        assert_eq!(a.count, u64::MAX);
        assert_eq!(a.overflow, u64::MAX);
        // Still usable afterwards: probabilities stay in [0, 1].
        let p = a.ccdf_at(0);
        assert!((0.0..=1.0).contains(&p));
    }
}
