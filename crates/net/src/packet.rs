//! Packets and identifiers.

use lit_sim::{Duration, Time};

/// Identifies a session (connection) within one [`crate::Network`].
/// Sessions are numbered densely from 0 in the order they were added.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u32);

impl SessionId {
    /// The dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a server node within one [`crate::Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A packet in flight.
///
/// Besides routing bookkeeping, a packet carries the per-hop scheduling
/// fields of the Leave-in-Time header. The paper transmits the holding time
/// `A` "in the packet's header to node n" (eq. 9); `deadline` and `d` are
/// scratch fields written by the discipline at arrival and read back at
/// departure when it stamps `hold` for the next hop. Baseline disciplines
/// that don't need them simply leave them at their defaults.
///
/// Every field is a scalar, so a packet is `Copy`: the sharded executor
/// moves packets between [`crate::PacketArena`]s and across shard
/// mailboxes by value, with no per-packet heap traffic.
#[derive(Clone, Copy, Debug)]
pub struct Packet {
    /// Owning session.
    pub session: SessionId,
    /// Per-session sequence number (the paper's packet index `i`,
    /// 1-based).
    pub seq: u64,
    /// Length in bits, `L_{i,s}`.
    pub len_bits: u32,
    /// Index into the session's route of the node currently holding the
    /// packet.
    pub hop: u32,
    /// Generation time = arrival time at the first server, `t¹_{i,s}`.
    pub created: Time,
    /// Arrival time (last bit) at the current node, `tⁿ_{i,s}`.
    pub arrived: Time,
    /// Holding time `Aⁿ_{i,s}` for the *current* node, stamped by the
    /// upstream node at departure (zero at the first hop, eq. 8).
    pub hold: Duration,
    /// Transmission deadline `Fⁿ_{i,s}` at the current node, written by the
    /// discipline in `on_arrival`.
    pub deadline: Time,
    /// The per-hop delay increment `dⁿ_{i,s}` used at the current node,
    /// written by the discipline in `on_arrival`.
    pub d: Duration,
    /// This packet's delay in the session's co-simulated reference server
    /// (eq. 1), stamped at injection. Lets delivery-time statistics check
    /// the *pathwise* form of ineq. (12): `D_i − D_i^ref < β + α`.
    pub ref_delay: Duration,
}

impl Packet {
    /// A fresh packet entering the network at `created`.
    pub fn new(session: SessionId, seq: u64, len_bits: u32, created: Time) -> Self {
        Packet {
            session,
            seq,
            len_bits,
            hop: 0,
            created,
            arrived: created,
            hold: Duration::ZERO,
            deadline: created,
            d: Duration::ZERO,
            ref_delay: Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_packet_defaults() {
        let p = Packet::new(SessionId(3), 1, 424, Time::from_ms(7));
        assert_eq!(p.session, SessionId(3));
        assert_eq!(p.hop, 0);
        assert_eq!(p.arrived, Time::from_ms(7));
        assert_eq!(p.hold, Duration::ZERO);
        assert_eq!(SessionId(3).index(), 3);
        assert_eq!(NodeId(2).index(), 2);
    }
}
