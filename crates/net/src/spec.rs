//! Session and link parameterization shared by every discipline.

use crate::packet::SessionId;
use lit_sim::{Duration, PS_PER_SEC};

/// Parameters of a node's outgoing link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkParams {
    /// Link capacity `Cₙ` in bits per second.
    pub rate_bps: u64,
    /// Propagation delay `Γₙ` of the outgoing link.
    pub propagation: Duration,
    /// The largest packet length allowed anywhere in the network,
    /// `L_MAX`, in bits. Enters the holding-time computation (eq. 9) and
    /// every bound.
    pub lmax_bits: u32,
}

impl LinkParams {
    /// The paper's link: T1 capacity (1536 kbit/s), 1 ms propagation
    /// (≈ 200 km of fiber), 424-bit maximum packet.
    pub fn paper_t1() -> Self {
        LinkParams {
            rate_bps: 1_536_000,
            propagation: Duration::from_ms(1),
            lmax_bits: 424,
        }
    }

    /// Transmission time of an `len_bits`-bit packet on this link.
    pub fn tx_time(&self, len_bits: u32) -> Duration {
        Duration::from_bits_at_rate(len_bits as u64, self.rate_bps)
    }

    /// `L_MAX / Cₙ` — the worst-case transmission time on this link.
    pub fn lmax_time(&self) -> Duration {
        self.tx_time(self.lmax_bits)
    }
}

/// How the per-hop delay increment `d_{i,s}` is assigned for a session at
/// a node (the paper's "second generalization", eq. 4–5 and §2 "The
/// Admission Control Procedures").
///
/// The admission control procedures in `lit-core` produce values of this
/// type; the enum itself lives here so that the network substrate stays
/// independent of any particular discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelayAssignment {
    /// `d_{i,s} = L_{i,s} / r_s` — the VirtualClock special case
    /// (admission control procedure 1 with one class and ε = 0).
    LenOverRate,
    /// `d_{i,s} = L_{i,s} · num/den + base` with `num/den` in seconds per
    /// bit — rules (1.3) and (2.3), where `num = R` and `den = r·C`.
    Linear {
        /// Numerator of the per-bit slope (a bandwidth, bit/s).
        num: u64,
        /// Denominator of the per-bit slope (a product of bandwidths,
        /// bit²/s²).
        den: u128,
        /// Constant offset (`σ` of the class, plus any ε).
        base: Duration,
    },
    /// `d_{i,s} = d` — a packet-length-independent constant (rules (1.3a),
    /// (2.3a), and admission control procedure 3).
    Fixed(Duration),
}

impl DelayAssignment {
    /// The delay increment for a packet of `len_bits` belonging to a
    /// session with reserved rate `rate_bps`.
    pub fn d_for(&self, len_bits: u32, rate_bps: u64) -> Duration {
        match *self {
            DelayAssignment::LenOverRate => Duration::from_bits_at_rate(len_bits as u64, rate_bps),
            DelayAssignment::Linear { num, den, base } => {
                // len · num / den seconds, computed exactly in u128 ps.
                let num_ps = len_bits as u128 * num as u128 * PS_PER_SEC as u128;
                let ps = (num_ps + den / 2) / den;
                let ps = u64::try_from(ps).expect("linear delay increment fits u64 ps");
                base + Duration::from_ps(ps)
            }
            DelayAssignment::Fixed(d) => d,
        }
    }

    /// `d_max,s` — the supremum of `d_{i,s}` over all packets of a session
    /// with maximum length `max_len_bits` (all three forms are monotone in
    /// the packet length).
    pub fn d_max(&self, max_len_bits: u32, rate_bps: u64) -> Duration {
        self.d_for(max_len_bits, rate_bps)
    }

    /// Lower this assignment to branch-free fixed-point coefficients for a
    /// session with reserved rate `rate_bps`. `coeffs(r).d_ps(len)` is
    /// bit-identical to `d_for(len, r).as_ps()` for every form.
    pub fn coeffs(&self, rate_bps: u64) -> DelayCoeffs {
        match *self {
            DelayAssignment::LenOverRate => DelayCoeffs {
                num_ps: PS_PER_SEC as u128,
                den: rate_bps as u128,
                base_ps: 0,
            },
            DelayAssignment::Linear { num, den, base } => DelayCoeffs {
                num_ps: num as u128 * PS_PER_SEC as u128,
                den,
                base_ps: base.as_ps(),
            },
            DelayAssignment::Fixed(d) => DelayCoeffs {
                num_ps: 0,
                den: 1,
                base_ps: d.as_ps(),
            },
        }
    }
}

/// A [`DelayAssignment`] lowered to uniform fixed-point coefficients:
/// every form becomes
///
/// ```text
/// d_ps(len) = (len · num_ps + den/2) / den + base_ps
/// ```
///
/// computed exactly in `u128`. Struct-of-arrays schedulers store one
/// `(num_ps, den, base_ps)` triple per session and evaluate eq. 8–11 over
/// flat arrays with no per-packet enum dispatch; the half-denominator
/// rounding matches `Duration::from_bits_at_rate` and
/// [`DelayAssignment::d_for`] bit for bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DelayCoeffs {
    /// Per-bit slope numerator, pre-multiplied into picoseconds.
    pub num_ps: u128,
    /// Per-bit slope denominator (never zero for a valid session).
    pub den: u128,
    /// Constant offset in picoseconds.
    pub base_ps: u64,
}

impl DelayCoeffs {
    /// The delay increment for a `len_bits`-bit packet, in picoseconds.
    ///
    /// # Panics
    /// Panics if the increment overflows `u64` picoseconds or `den` is
    /// zero — the same loud failures as the `DelayAssignment` path.
    #[inline]
    pub fn d_ps(&self, len_bits: u32) -> u64 {
        let ps = (len_bits as u128 * self.num_ps + self.den / 2) / self.den;
        let ps = u64::try_from(ps).expect("delay increment fits u64 ps");
        ps.checked_add(self.base_ps)
            .expect("delay increment overflowed u64 ps")
    }
}

/// Everything a node needs to know about a session at connection
/// establishment.
#[derive(Clone, Copy, Debug)]
pub struct SessionSpec {
    /// Dense session identifier.
    pub id: SessionId,
    /// Reserved rate `r_s` in bits per second.
    pub rate_bps: u64,
    /// Maximum packet length `L_max,s` in bits.
    pub max_len_bits: u32,
    /// Minimum packet length `L_min,s` in bits (enters the per-node jitter
    /// contribution `δⁿ_max,s`).
    pub min_len_bits: u32,
    /// Whether the session requests delay-jitter control (a delay
    /// regulator at every hop past the first).
    pub jitter_control: bool,
    /// Default per-hop delay assignment (may be overridden hop by hop when
    /// building the network).
    pub delay: DelayAssignment,
}

impl SessionSpec {
    /// A spec with the paper's fixed 424-bit packets and
    /// `d = L/r` (VirtualClock mode), no jitter control.
    pub fn atm(id: SessionId, rate_bps: u64) -> Self {
        SessionSpec {
            id,
            rate_bps,
            max_len_bits: 424,
            min_len_bits: 424,
            jitter_control: false,
            delay: DelayAssignment::LenOverRate,
        }
    }

    /// Builder-style: enable delay-jitter control.
    pub fn with_jitter_control(mut self) -> Self {
        self.jitter_control = true;
        self
    }

    /// Builder-style: set the delay assignment.
    pub fn with_delay(mut self, delay: DelayAssignment) -> Self {
        self.delay = delay;
        self
    }

    /// `L_max,s / r_s` for this session.
    pub fn len_over_rate_max(&self) -> Duration {
        Duration::from_bits_at_rate(self.max_len_bits as u64, self.rate_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_link_times() {
        let l = LinkParams::paper_t1();
        // 424 bits / 1536 kbit/s ≈ 276.042 us.
        assert_eq!(l.lmax_time().as_ps(), 276_041_667);
        assert_eq!(l.tx_time(424), l.lmax_time());
    }

    #[test]
    fn tx_time_scales_with_length() {
        let l = LinkParams::paper_t1();
        assert_eq!(l.tx_time(848), Duration::from_bits_at_rate(848, 1_536_000));
        assert_eq!(l.tx_time(0), Duration::ZERO);
    }

    #[test]
    fn len_over_rate() {
        let d = DelayAssignment::LenOverRate.d_for(424, 32_000);
        assert_eq!(d, Duration::from_us(13_250));
    }

    #[test]
    fn linear_matches_ac1_worked_example() {
        // Paper §2: C = 100 Mbit/s, r = 100 kbit/s, L = 400 bits,
        // class 1 with R1 = 10 Mbit/s, σ0 = 0 ⇒ d = L·R1/(r·C) = 0.4 ms.
        let da = DelayAssignment::Linear {
            num: 10_000_000,
            den: 100_000u128 * 100_000_000u128,
            base: Duration::ZERO,
        };
        assert_eq!(da.d_for(400, 100_000), Duration::from_us(400));
    }

    #[test]
    fn linear_with_base() {
        // Class 2 of the same example: R2 = 40 Mbit/s, σ1 = 0.2 ms
        // ⇒ d = 400·40M/(100k·100M) + 0.2 ms = 1.6 ms + 0.2 ms = 1.8 ms.
        let da = DelayAssignment::Linear {
            num: 40_000_000,
            den: 100_000u128 * 100_000_000u128,
            base: Duration::from_us(200),
        };
        assert_eq!(da.d_for(400, 100_000), Duration::from_us(1_800));
    }

    #[test]
    fn fixed_ignores_length() {
        let da = DelayAssignment::Fixed(Duration::from_ms(5));
        assert_eq!(da.d_for(1, 1), Duration::from_ms(5));
        assert_eq!(da.d_max(1_000_000, 1), Duration::from_ms(5));
    }

    #[test]
    fn d_max_uses_max_len() {
        let da = DelayAssignment::LenOverRate;
        assert_eq!(da.d_max(848, 32_000), Duration::from_us(26_500));
    }

    #[test]
    fn coeffs_match_d_for_bit_exactly() {
        let forms = [
            DelayAssignment::LenOverRate,
            DelayAssignment::Linear {
                num: 10_000_000,
                den: 100_000u128 * 100_000_000u128,
                base: Duration::ZERO,
            },
            DelayAssignment::Linear {
                num: 40_000_000,
                den: 100_000u128 * 100_000_000u128,
                base: Duration::from_us(200),
            },
            DelayAssignment::Fixed(Duration::from_ms(5)),
        ];
        for da in forms {
            for rate in [32_000, 100_000, 1_536_000, 10_000_000_000] {
                let c = da.coeffs(rate);
                for len in [0u32, 1, 53, 424, 848, 65_535, 1 << 24] {
                    assert_eq!(
                        c.d_ps(len),
                        da.d_for(len, rate).as_ps(),
                        "form={da:?} rate={rate} len={len}"
                    );
                }
            }
        }
    }

    #[test]
    fn spec_builders() {
        let s = SessionSpec::atm(SessionId(0), 32_000)
            .with_jitter_control()
            .with_delay(DelayAssignment::Fixed(Duration::from_ms(2)));
        assert!(s.jitter_control);
        assert_eq!(s.delay, DelayAssignment::Fixed(Duration::from_ms(2)));
        assert_eq!(s.len_over_rate_max(), Duration::from_us(13_250));
    }
}
