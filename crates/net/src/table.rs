//! Dense per-session state tables and the `SessionId` free-list slab.
//!
//! Session identifiers are dense `u32` indices by construction (see
//! [`SessionId`]), so per-session scheduler state never needs a hash map:
//! a flat table indexed by `id.index()` is both O(1) and cache-linear.
//! Two pieces live here:
//!
//! * [`IdSlab`] — the allocator that *keeps* ids dense across
//!   connect/teardown churn. Without it, long-running experiments mint
//!   monotonically growing ids and every table in every node leaks
//!   capacity; with it, a torn-down session's slot is reused by the next
//!   establishment and table footprints are bounded by the peak number of
//!   concurrent sessions.
//! * [`SessionTable`] — a small slab keyed by `SessionId` for disciplines
//!   whose per-session state is a single struct (the baselines). The
//!   Leave-in-Time scheduler goes further and splits its state into
//!   struct-of-arrays columns (see `lit-core`), but reuses the same
//!   occupancy discipline.

use crate::packet::SessionId;

/// Free-list allocator for dense [`SessionId`]s.
///
/// `alloc` pops the free list before growing the id space, so the
/// high-water mark — and with it the capacity of every per-session table
/// in the network — is bounded by the peak number of live sessions, not
/// by the total number of establishments.
///
/// ```
/// use lit_net::{IdSlab, SessionId};
///
/// let mut slab = IdSlab::new();
/// let a = slab.alloc();
/// let b = slab.alloc();
/// assert_eq!((a, b), (SessionId(0), SessionId(1)));
/// assert!(slab.release(a));
/// assert_eq!(slab.alloc(), SessionId(0)); // slot reused
/// assert_eq!(slab.high_water(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct IdSlab {
    /// `live[i]` iff id `i` is currently allocated; `live.len()` is the
    /// high-water mark of the id space.
    live: Vec<bool>,
    /// Released ids available for reuse (LIFO: warmest slot first).
    free: Vec<u32>,
}

impl IdSlab {
    /// An empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the lowest-overhead free id: a released slot if one
    /// exists, otherwise a fresh id extending the space by one.
    pub fn alloc(&mut self) -> SessionId {
        if let Some(id) = self.free.pop() {
            if let Some(slot) = self.live.get_mut(id as usize) {
                *slot = true;
            }
            return SessionId(id);
        }
        // lit-lint: allow(no-panic-hot-path, "control-plane growth path; 2^32 concurrent sessions exceeds any reachable configuration and must stop the run")
        let id = u32::try_from(self.live.len()).expect("session id space exhausted");
        self.live.push(true);
        SessionId(id)
    }

    /// Return `id` to the free list. `false` (and no state change) if the
    /// id is unknown or already free — double releases must not poison
    /// the free list with duplicates.
    pub fn release(&mut self, id: SessionId) -> bool {
        match self.live.get_mut(id.index()) {
            Some(slot) if *slot => {
                *slot = false;
                self.free.push(id.0);
                true
            }
            _ => false,
        }
    }

    /// Whether `id` is currently allocated.
    pub fn is_live(&self, id: SessionId) -> bool {
        self.live.get(id.index()).copied().unwrap_or(false)
    }

    /// Number of currently allocated ids.
    pub fn live_count(&self) -> usize {
        self.live.len() - self.free.len()
    }

    /// Size of the id space ever used: the bound on every dense
    /// per-session table's capacity.
    pub fn high_water(&self) -> usize {
        self.live.len()
    }
}

/// A slab of per-session state keyed by dense [`SessionId`]s.
///
/// Insert/remove/lookup are O(1); capacity is the id high-water mark.
/// Removing a session frees its state immediately (`Option` slot), so a
/// reused id starts from a freshly inserted state, never a stale one.
#[derive(Clone, Debug)]
pub struct SessionTable<S> {
    slots: Vec<Option<S>>,
    live: usize,
}

impl<S> Default for SessionTable<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> SessionTable<S> {
    /// An empty table.
    pub fn new() -> Self {
        SessionTable {
            slots: Vec::new(),
            live: 0,
        }
    }

    /// Insert (or replace) the state for `id`, growing the table to fit.
    pub fn insert(&mut self, id: SessionId, state: S) {
        let idx = id.index();
        if self.slots.len() <= idx {
            self.slots.resize_with(idx + 1, || None);
        }
        if let Some(slot) = self.slots.get_mut(idx) {
            if slot.replace(state).is_none() {
                self.live += 1;
            }
        }
    }

    /// Remove and return the state for `id`, if present.
    pub fn remove(&mut self, id: SessionId) -> Option<S> {
        let out = self.slots.get_mut(id.index()).and_then(Option::take);
        if out.is_some() {
            self.live -= 1;
        }
        out
    }

    /// The state for `id`, if present.
    pub fn get(&self, id: SessionId) -> Option<&S> {
        self.slots.get(id.index()).and_then(Option::as_ref)
    }

    /// Mutable state for `id`, if present.
    pub fn get_mut(&mut self, id: SessionId) -> Option<&mut S> {
        self.slots.get_mut(id.index()).and_then(Option::as_mut)
    }

    /// Whether `id` has state in the table.
    pub fn contains(&self, id: SessionId) -> bool {
        self.get(id).is_some()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Table capacity: the id high-water mark seen so far.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Iterate live sessions in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SessionId, &S)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.as_ref()
                .map(|s| (SessionId(u32::try_from(i).unwrap_or(u32::MAX)), s))
        })
    }

    /// Iterate live session states in id order.
    pub fn values(&self) -> impl Iterator<Item = &S> {
        self.slots.iter().flatten()
    }

    /// Iterate live session states mutably, in id order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut S> {
        self.slots.iter_mut().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_reuses_released_ids() {
        let mut slab = IdSlab::new();
        let ids: Vec<_> = (0..4).map(|_| slab.alloc()).collect();
        assert_eq!(
            ids,
            vec![SessionId(0), SessionId(1), SessionId(2), SessionId(3)]
        );
        assert!(slab.release(SessionId(1)));
        assert!(slab.release(SessionId(2)));
        // LIFO reuse: warmest slot first.
        assert_eq!(slab.alloc(), SessionId(2));
        assert_eq!(slab.alloc(), SessionId(1));
        assert_eq!(slab.alloc(), SessionId(4));
        assert_eq!(slab.high_water(), 5);
        assert_eq!(slab.live_count(), 5);
    }

    #[test]
    fn slab_rejects_double_release() {
        let mut slab = IdSlab::new();
        let a = slab.alloc();
        assert!(slab.release(a));
        assert!(!slab.release(a), "double release must be rejected");
        assert!(!slab.release(SessionId(99)), "unknown id must be rejected");
        // The free list holds exactly one entry: a single realloc, then
        // fresh growth.
        assert_eq!(slab.alloc(), a);
        assert_eq!(slab.alloc(), SessionId(1));
    }

    #[test]
    fn churn_bounds_high_water_at_peak_live() {
        let mut slab = IdSlab::new();
        // 1000 connect/teardown cycles with at most 3 concurrent sessions
        // must not grow the id space past 3.
        let mut held: Vec<SessionId> = Vec::new();
        for i in 0..1000 {
            if held.len() == 3 {
                let id = held.remove(i % held.len());
                assert!(slab.release(id));
            }
            held.push(slab.alloc());
        }
        assert_eq!(slab.high_water(), 3);
    }

    #[test]
    fn table_insert_remove_get() {
        let mut t: SessionTable<u64> = SessionTable::new();
        t.insert(SessionId(2), 20);
        t.insert(SessionId(0), 0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.capacity(), 3);
        assert_eq!(t.get(SessionId(2)), Some(&20));
        assert_eq!(t.get(SessionId(1)), None);
        assert!(!t.contains(SessionId(1)));
        *t.get_mut(SessionId(0)).unwrap() = 5;
        assert_eq!(t.remove(SessionId(0)), Some(5));
        assert_eq!(t.remove(SessionId(0)), None);
        assert_eq!(t.len(), 1);
        let pairs: Vec<_> = t.iter().map(|(id, &v)| (id, v)).collect();
        assert_eq!(pairs, vec![(SessionId(2), 20)]);
    }

    #[test]
    fn table_replace_keeps_live_count() {
        let mut t: SessionTable<&str> = SessionTable::new();
        t.insert(SessionId(1), "a");
        t.insert(SessionId(1), "b");
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(SessionId(1)), Some(&"b"));
    }
}
