//! The per-node eligible-packet queue, exact or approximate.
//!
//! The paper notes that Leave-in-Time "uses an approximate sorted priority
//! queue algorithm which runs in O(1) time with a small cost in emulation
//! error". [`EligibleQueue`] makes that trade-off explicit and selectable:
//!
//! * [`QueueKind::Exact`] — a binary heap ordered by `(key, arrival seq)`:
//!   exact deadline order, `O(log n)` per operation (the default);
//! * [`QueueKind::Bucketed`] — deadlines quantized into buckets of a fixed
//!   width, FIFO within a bucket: two packets whose deadlines differ by
//!   less than one bucket may be served in arrival order instead of
//!   deadline order, so the *emulation error* — extra lateness versus the
//!   exact scheduler — is bounded by the bucket width. The engine is
//!   `lit-sim`'s ring-array [`CalendarQueue`] keyed by the quantized
//!   deadline, so push/pop run in amortized `O(1)` — the paper's claimed
//!   line-card cost — with the identical one-bucket-width error bound the
//!   earlier `BTreeMap`-of-FIFOs implementation had (same quantized key ⇒
//!   same FIFO ordering, only the lookup cost changed).
//!
//! The `ablation-queue` command of `lit-repro` measures both the error and
//! the cost on the paper's workloads.

use lit_sim::{CalendarQueue, Duration, KeyedEntry};
use std::collections::BinaryHeap;

/// Which eligible-queue implementation a node uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueKind {
    /// Exact deadline order (binary heap).
    #[default]
    Exact,
    /// Bucketed approximate order; emulation error < the bucket width.
    Bucketed {
        /// Bucket width (quantization of the priority key, which for
        /// time-keyed disciplines is picoseconds).
        bucket: Duration,
    },
}

/// The eligible queue of one node, generic over the queued payload: the
/// scalar executor stores packets by value, the sharded executor stores
/// dense [`crate::PacketRef`] arena indices.
pub(crate) enum EligibleQueue<T> {
    Exact {
        heap: BinaryHeap<KeyedEntry<u128, T>>,
        seq: u64,
    },
    Bucketed {
        bucket_ps: u128,
        /// Calendar ring keyed by `key / bucket_ps`; the ring's own push
        /// sequence keeps packets FIFO within a quantization bucket.
        ring: CalendarQueue<T>,
    },
}

impl<T> EligibleQueue<T> {
    pub(crate) fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Exact => EligibleQueue::Exact {
                heap: BinaryHeap::new(),
                seq: 0,
            },
            QueueKind::Bucketed { bucket } => {
                assert!(bucket > Duration::ZERO, "bucketed queue: zero width");
                EligibleQueue::Bucketed {
                    bucket_ps: bucket.as_ps() as u128,
                    ring: CalendarQueue::new(),
                }
            }
        }
    }

    pub(crate) fn push(&mut self, key: u128, pkt: T) {
        match self {
            EligibleQueue::Exact { heap, seq } => {
                let s = *seq;
                *seq += 1;
                heap.push(KeyedEntry {
                    key,
                    seq: s,
                    item: pkt,
                });
            }
            EligibleQueue::Bucketed { bucket_ps, ring } => {
                ring.push(key / *bucket_ps, pkt);
            }
        }
    }

    pub(crate) fn pop(&mut self) -> Option<T> {
        match self {
            EligibleQueue::Exact { heap, .. } => heap.pop().map(|e| e.item),
            EligibleQueue::Bucketed { ring, .. } => {
                let had = ring.len();
                let popped = ring.pop().map(|(_, p)| p);
                // The queue must never report packets and then fail to
                // yield one — the predecessor of this code (a map of
                // per-bucket FIFOs) could silently desync its length if
                // a structurally present bucket turned up empty. The
                // calendar owns its single length counter, making the
                // invariant structural; keep it checked.
                debug_assert_eq!(
                    popped.is_some(),
                    had > 0,
                    "eligible queue: length says {had} but pop disagrees",
                );
                popped
            }
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        match self {
            EligibleQueue::Exact { heap, .. } => heap.is_empty(),
            EligibleQueue::Bucketed { ring, .. } => ring.is_empty(),
        }
    }

    /// Packets awaiting service (excluding any packet in transmission).
    /// Used by the observability probe to sample queue depth; both
    /// variants answer in O(1).
    pub(crate) fn len(&self) -> usize {
        match self {
            EligibleQueue::Exact { heap, .. } => heap.len(),
            EligibleQueue::Bucketed { ring, .. } => ring.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, SessionId};
    use lit_sim::Time;

    fn pkt(seq: u64) -> Packet {
        Packet::new(SessionId(0), seq, 424, Time::ZERO)
    }

    #[test]
    fn exact_orders_by_key_then_fifo() {
        let mut q = EligibleQueue::new(QueueKind::Exact);
        q.push(30, pkt(1));
        q.push(10, pkt(2));
        q.push(10, pkt(3));
        q.push(20, pkt(4));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|p| p.seq).collect();
        assert_eq!(order, vec![2, 3, 4, 1]);
        assert!(q.is_empty());
    }

    #[test]
    fn bucketed_is_fifo_within_bucket() {
        let w = Duration::from_ms(1);
        let mut q = EligibleQueue::new(QueueKind::Bucketed { bucket: w });
        // Keys 0.4 ms and 0.9 ms share bucket 0: FIFO wins over key order.
        q.push(Duration::from_us(900).as_ps() as u128, pkt(1));
        q.push(Duration::from_us(400).as_ps() as u128, pkt(2));
        // 1.5 ms lands in bucket 1.
        q.push(Duration::from_us(1_500).as_ps() as u128, pkt(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|p| p.seq).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn bucketed_error_is_below_one_bucket() {
        // Any inversion the bucketed queue produces involves keys within
        // one bucket width of each other.
        let w = Duration::from_us(500);
        let mut q = EligibleQueue::new(QueueKind::Bucketed { bucket: w });
        let keys = [7u64, 3, 9, 1, 5, 2, 8, 4, 6, 0];
        for (i, &k) in keys.iter().enumerate() {
            let mut p = pkt(i as u64);
            p.deadline = Time::from_us(k * 100);
            q.push((k * 100_000_000) as u128, p);
        }
        let mut popped = Vec::new();
        while let Some(p) = q.pop() {
            popped.push(p.deadline);
        }
        for (i, a) in popped.iter().enumerate() {
            for b in &popped[i + 1..] {
                if a > b {
                    assert!(*a - *b < w, "inversion of {} over {}", a, b);
                }
            }
        }
    }

    #[test]
    fn bucketed_pop_never_lies_about_length() {
        // Regression guard for the old desync hazard: every packet the
        // queue accepted must come back out as a `Some`, with `None` only
        // once truly empty — across interleavings that empty and refill
        // quantization buckets repeatedly.
        let w = Duration::from_us(10);
        let mut q = EligibleQueue::new(QueueKind::Bucketed { bucket: w });
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for round in 0..50u64 {
            for i in 0..(round % 7) + 1 {
                // Mix of shared and distinct buckets, plus far-ahead keys.
                let key = (round % 3) as u128 * w.as_ps() as u128
                    + i as u128
                    + (i % 2) as u128 * 1_000_000_000;
                q.push(key, pkt(pushed));
                pushed += 1;
            }
            for _ in 0..(round % 5) {
                if q.pop().is_some() {
                    popped += 1;
                } else {
                    assert!(q.is_empty(), "pop returned None on a non-empty queue");
                }
            }
        }
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(pushed, popped, "queue lost or invented packets");
        assert!(q.is_empty());
    }
}
