//! The per-node eligible-packet queue, exact or approximate.
//!
//! The paper notes that Leave-in-Time "uses an approximate sorted priority
//! queue algorithm which runs in O(1) time with a small cost in emulation
//! error". [`EligibleQueue`] makes that trade-off explicit and selectable:
//!
//! * [`QueueKind::Exact`] — a binary heap ordered by `(key, arrival seq)`:
//!   exact deadline order, `O(log n)` per operation (the default);
//! * [`QueueKind::Bucketed`] — deadlines quantized into buckets of a fixed
//!   width, FIFO within a bucket: two packets whose deadlines differ by
//!   less than one bucket may be served in arrival order instead of
//!   deadline order, so the *emulation error* — extra lateness versus the
//!   exact scheduler — is bounded by the bucket width. Operations cost
//!   `O(log B)` in the number of non-empty buckets (a ring-array calendar
//!   queue would make this `O(1)`; the bound on the error is identical).
//!
//! The `ablation-queue` command of `lit-repro` measures both the error and
//! the cost on the paper's workloads.

use crate::packet::Packet;
use lit_sim::Duration;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Which eligible-queue implementation a node uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueKind {
    /// Exact deadline order (binary heap).
    #[default]
    Exact,
    /// Bucketed approximate order; emulation error < the bucket width.
    Bucketed {
        /// Bucket width (quantization of the priority key, which for
        /// time-keyed disciplines is picoseconds).
        bucket: Duration,
    },
}

/// An entry of the exact heap.
pub(crate) struct HeapEntry {
    key: u128,
    seq: u64,
    pkt: Packet,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behaviour, FIFO among equal keys.
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The eligible queue of one node.
pub(crate) enum EligibleQueue {
    Exact {
        heap: BinaryHeap<HeapEntry>,
        seq: u64,
    },
    Bucketed {
        bucket_ps: u128,
        buckets: BTreeMap<u128, VecDeque<Packet>>,
        len: usize,
    },
}

impl EligibleQueue {
    pub(crate) fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Exact => EligibleQueue::Exact {
                heap: BinaryHeap::new(),
                seq: 0,
            },
            QueueKind::Bucketed { bucket } => {
                assert!(bucket > Duration::ZERO, "bucketed queue: zero width");
                EligibleQueue::Bucketed {
                    bucket_ps: bucket.as_ps() as u128,
                    buckets: BTreeMap::new(),
                    len: 0,
                }
            }
        }
    }

    pub(crate) fn push(&mut self, key: u128, pkt: Packet) {
        match self {
            EligibleQueue::Exact { heap, seq } => {
                let s = *seq;
                *seq += 1;
                heap.push(HeapEntry { key, seq: s, pkt });
            }
            EligibleQueue::Bucketed {
                bucket_ps,
                buckets,
                len,
            } => {
                buckets.entry(key / *bucket_ps).or_default().push_back(pkt);
                *len += 1;
            }
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Packet> {
        match self {
            EligibleQueue::Exact { heap, .. } => heap.pop().map(|e| e.pkt),
            EligibleQueue::Bucketed { buckets, len, .. } => {
                let mut entry = buckets.first_entry()?;
                let pkt = entry.get_mut().pop_front()?;
                if entry.get().is_empty() {
                    entry.remove();
                }
                *len -= 1;
                Some(pkt)
            }
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        match self {
            EligibleQueue::Exact { heap, .. } => heap.is_empty(),
            EligibleQueue::Bucketed { len, .. } => *len == 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::SessionId;
    use lit_sim::Time;

    fn pkt(seq: u64) -> Packet {
        Packet::new(SessionId(0), seq, 424, Time::ZERO)
    }

    #[test]
    fn exact_orders_by_key_then_fifo() {
        let mut q = EligibleQueue::new(QueueKind::Exact);
        q.push(30, pkt(1));
        q.push(10, pkt(2));
        q.push(10, pkt(3));
        q.push(20, pkt(4));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|p| p.seq).collect();
        assert_eq!(order, vec![2, 3, 4, 1]);
        assert!(q.is_empty());
    }

    #[test]
    fn bucketed_is_fifo_within_bucket() {
        let w = Duration::from_ms(1);
        let mut q = EligibleQueue::new(QueueKind::Bucketed { bucket: w });
        // Keys 0.4 ms and 0.9 ms share bucket 0: FIFO wins over key order.
        q.push(Duration::from_us(900).as_ps() as u128, pkt(1));
        q.push(Duration::from_us(400).as_ps() as u128, pkt(2));
        // 1.5 ms lands in bucket 1.
        q.push(Duration::from_us(1_500).as_ps() as u128, pkt(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|p| p.seq).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn bucketed_error_is_below_one_bucket() {
        // Any inversion the bucketed queue produces involves keys within
        // one bucket width of each other.
        let w = Duration::from_us(500);
        let mut q = EligibleQueue::new(QueueKind::Bucketed { bucket: w });
        let keys = [7u64, 3, 9, 1, 5, 2, 8, 4, 6, 0];
        for (i, &k) in keys.iter().enumerate() {
            let mut p = pkt(i as u64);
            p.deadline = Time::from_us(k * 100);
            q.push((k * 100_000_000) as u128, p);
        }
        let mut popped = Vec::new();
        while let Some(p) = q.pop() {
            popped.push(p.deadline);
        }
        for (i, a) in popped.iter().enumerate() {
            for b in &popped[i + 1..] {
                if a > b {
                    assert!(*a - *b < w, "inversion of {} over {}", a, b);
                }
            }
        }
    }
}
