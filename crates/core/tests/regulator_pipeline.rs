//! A fully hand-computed two-node Leave-in-Time pipeline.
//!
//! One jitter-controlled session sends two packets through two T1 nodes.
//! Every quantity — deadlines `F`, clocks `K`, actual finish times `F̂`,
//! holding times `A`, eligibilities `E` — is derived by hand from
//! eqs. (6)–(11) below and asserted against the simulator, end to end.
//!
//! Setup: L = 424 bits, r = 32 kbit/s (so L/r = 13.25 ms), C = 1536 kbit/s
//! (L/C ≈ 0.276042 ms), Γ = 1 ms, no competing traffic.
//!
//! Packet arrivals at node 1: t₁ = 0, t₂ = 1 ms (a back-to-back-ish pair).
//!
//! Node 1 (E = t, hold = 0 at the first hop):
//!   F₁¹ = 0 + 13.25 = 13.25 ms,  K₁¹ = 13.25 ms
//!   F₂¹ = max(1, 13.25) + 13.25 = 26.5 ms,  K₂¹ = 26.5 ms
//! The link is idle, but packets are *eligible* immediately (no JC hold at
//! hop 1), so they transmit on arrival:
//!   F̂₁¹ = 0 + L/C = 0.276042 ms       → delivered to node 2 at 1.276042 ms
//!   F̂₂¹ = 1 + L/C = 1.276042 ms       → node 2 at 2.276042 ms
//! Holding times stamped for node 2 (eq. 9, d = L/r so d_max − d = 0):
//!   A₁² = F₁¹ + L/C − F̂₁¹ = 13.25 + 0.276042 − 0.276042 = 13.25 ms
//!   A₂² = 26.5 + 0.276042 − 1.276042 = 25.5 ms
//! Node 2 eligibilities (eq. 7):
//!   E₁² = 1.276042 + 13.25  = 14.526042 ms
//!   E₂² = 2.276042 + 25.5   = 27.776042 ms
//! Node 2 deadlines (eq. 10–11, K₀² = t₁² = 1.276042 ms):
//!   F₁² = max(E₁², K₀²) + 13.25 = 27.776042 ms, K₁² = 27.776042 ms
//!   F₂² = max(E₂², K₁²) + 13.25 = 41.026042 ms
//! Transmissions start at eligibility (idle link):
//!   F̂₁² = E₁² + L/C = 14.802083 ms → delivered 15.802083 ms
//!   F̂₂² = E₂² + L/C = 28.052083 ms → delivered 29.052083 ms
//! End-to-end delays: 15.802083 ms and 28.052083 ms.
//!
//! Note the regulator's effect: both packets' *node-2 eligibilities* are
//! exactly `F¹ + L/C + Γ` — the jitter accumulated at node 1 (packet 2
//! waited 0 ms, packet 1 waited 0 ms, but their deadlines diverged from
//! real time differently) is fully reconstructed.

#![forbid(unsafe_code)]

use lit_core::LitDiscipline;
use lit_net::{LinkParams, NetworkBuilder, SessionId, SessionSpec};
use lit_sim::{Duration, Time};
use lit_traffic::TraceSource;

#[test]
fn two_node_regulator_pipeline_matches_hand_computation() {
    let mut b = NetworkBuilder::new();
    let nodes = b.tandem(2, LinkParams::paper_t1());
    let sid = b.add_session(
        SessionSpec::atm(SessionId(0), 32_000).with_jitter_control(),
        &nodes,
        Box::new(TraceSource::from_pairs([
            (Time::ZERO, 424),
            (Time::from_ms(1), 424),
        ])),
    );
    let mut net = b.build(&LitDiscipline::factory());
    net.run_until(Time::from_secs(1));

    let st = net.session_stats(sid);
    assert_eq!(st.delivered, 2);

    // L/C = 424/1536000 s = 276041666.67 ps ≈ 276041667 ps (rounded).
    let l_over_c = Duration::from_bits_at_rate(424, 1_536_000);
    assert_eq!(l_over_c.as_ps(), 276_041_667);

    // Packet 1: delivered at E₁² + L/C + Γ = 14.526042 + 0.276042 + 1 ms.
    let delivery1 = Time::from_ms(1) + l_over_c // arrival at node 2
        + Duration::from_us(13_250) // hold A₁²
        + l_over_c // transmission at node 2
        + Duration::from_ms(1); // final propagation
    let delay1 = delivery1 - Time::ZERO;

    // Packet 2: arrival at node 2 at 2.276042 ms + hold 25.5 ms
    // ⇒ eligible 27.776042 ms ⇒ delivered + L/C + Γ, minus creation 1 ms.
    let delivery2 =
        Time::from_ms(2) + l_over_c + Duration::from_us(25_500) + l_over_c + Duration::from_ms(1);
    let delay2 = delivery2 - Time::from_ms(1);

    assert_eq!(st.e2e.min().unwrap(), delay1, "packet 1 delay");
    assert_eq!(st.max_delay().unwrap(), delay2, "packet 2 delay");

    // Jitter: 28.052083 − 15.802083 = 12.25 ms = 13.25 − 1 (the arrival
    // spacing), exactly the reference-server jitter — per-hop jitter was
    // eliminated by the regulator.
    assert_eq!(st.jitter().unwrap(), Duration::from_us(12_250));
}

#[test]
fn without_jitter_control_packets_ride_ahead_of_their_deadlines() {
    // The same two packets without jitter control: they are never held,
    // so each sees only transmission + propagation per hop.
    let mut b = NetworkBuilder::new();
    let nodes = b.tandem(2, LinkParams::paper_t1());
    let sid = b.add_session(
        SessionSpec::atm(SessionId(0), 32_000),
        &nodes,
        Box::new(TraceSource::from_pairs([
            (Time::ZERO, 424),
            (Time::from_ms(1), 424),
        ])),
    );
    let mut net = b.build(&LitDiscipline::factory());
    net.run_until(Time::from_secs(1));
    let st = net.session_stats(sid);
    let l_over_c = Duration::from_bits_at_rate(424, 1_536_000);
    let want = (l_over_c + Duration::from_ms(1)) * 2;
    assert_eq!(st.max_delay().unwrap(), want);
    assert_eq!(st.jitter().unwrap(), Duration::ZERO);
}

#[test]
fn backlogged_sessions_get_their_reserved_rates() {
    // The throughput side of the guarantee: three persistently backlogged
    // sessions with reservations in ratio 3:2:1 filling a T1 exactly must
    // each receive (at least) their reserved rate over a long interval.
    use lit_traffic::PoissonSource;
    let rates = [768_000u64, 512_000, 256_000];
    let mut b = NetworkBuilder::new().seed(44);
    let nodes = b.tandem(1, LinkParams::paper_t1());
    let mut sids = Vec::new();
    for &r in &rates {
        // Offer ~2x the reservation so the session never goes idle.
        let gap = Duration::from_secs_f64(424.0 / (2.0 * r as f64));
        sids.push(b.add_session(
            SessionSpec::atm(SessionId(0), r),
            &nodes,
            Box::new(PoissonSource::new(gap, 424)),
        ));
    }
    let mut net = b.build(&LitDiscipline::factory());
    let horizon = Time::from_secs(60);
    net.run_until(horizon);
    for (&r, &sid) in rates.iter().zip(&sids) {
        let st = net.session_stats(sid);
        let goodput = st.delivered as f64 * 424.0 / horizon.as_secs_f64();
        assert!(
            goodput >= r as f64 * 0.99,
            "session reserved {r} got only {goodput:.0} bit/s"
        );
        // And no one steals: at most the reservation plus rounding slack,
        // because everyone else is also backlogged.
        assert!(
            goodput <= r as f64 * 1.02,
            "session reserved {r} took {goodput:.0} bit/s"
        );
    }
}
