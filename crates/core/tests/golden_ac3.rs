//! Golden pins for procedure 3 on the paper's worked example server
//! (§ "The Admission Control Procedures": C = 100 Mbit/s, the
//! three-class configuration).
//!
//! Two families of pins:
//!
//! * the worked example's granted delays (0.4 / 1.8 / 5.6 ms for the
//!   100 kbit/s, 400-bit session under AC1) are *AC3-feasible* as fixed
//!   per-session `d` values — the paper's procedures are consistent;
//! * exact rejection artifacts: the first violating subset the `2^n`
//!   enumerator reports is deterministic (smallest failing mask), so its
//!   `SubsetInfeasible { mask }` values are stable goldens, as is the
//!   fast backend's class-level witness for the same decisions.

#![forbid(unsafe_code)]

use lit_core::{Ac3Admission, Ac3Error, Ac3Fast, Ac3FastError};
use lit_net::DelayAssignment;
use lit_sim::Duration;

/// The worked example's link: C = 100 Mbit/s.
const LINK: u64 = 100_000_000;

#[test]
fn worked_example_delays_are_ac3_feasible() {
    // The paper assigns the 100 kbit/s, 400-bit session d = 0.4 ms in
    // class 1, 1.8 ms in class 2, 5.6 ms in class 3 (rule 1.3a). Running
    // those three assignments through procedure 3 as arbitrary fixed
    // delays must admit all of them: AC1's grants satisfy ineq. (19).
    let mut exact = Ac3Admission::new(LINK);
    let mut fast = Ac3Fast::new(LINK);
    for d_us in [400u64, 1_800, 5_600] {
        let d = Duration::from_us(d_us);
        let granted = exact.try_admit(100_000, 400, d).unwrap();
        assert_eq!(granted, DelayAssignment::Fixed(d));
        let (_, granted_fast) = fast.try_admit(100_000, 400, d).unwrap();
        assert_eq!(granted_fast, granted);
    }
    assert_eq!(exact.admitted_rate_bps(), 300_000);
    assert_eq!(fast.admitted_rate_bps(), 300_000);
}

#[test]
fn rejection_masks_are_stable_goldens() {
    // A generous session plus a tight one (d at 1.25× its singleton
    // floor L/C = 40 µs); an identical tight candidate then fails the
    // pair subset {s1, candidate} — the enumerator reports the smallest
    // failing mask, bit 1 ⇒ mask = 0b10.
    let mut exact = Ac3Admission::new(LINK);
    exact
        .try_admit(10_000_000, 4_000, Duration::from_ms(2))
        .unwrap();
    exact
        .try_admit(30_000_000, 4_000, Duration::from_us(50))
        .unwrap();
    let err = exact
        .try_admit(30_000_000, 4_000, Duration::from_us(50))
        .unwrap_err();
    assert_eq!(err, Ac3Error::SubsetInfeasible { mask: 0b10 });

    // A candidate infeasible on its own pins mask = 0 (the empty set of
    // existing sessions; the candidate is always in A).
    let err = exact
        .try_admit(30_000_000, 4_000, Duration::from_us(39))
        .unwrap_err();
    assert_eq!(err, Ac3Error::SubsetInfeasible { mask: 0 });

    // Teardown shifts delay capacity back: releasing the tight session
    // (index 1) makes the rejected candidate admissible.
    assert!(exact.release(1));
    assert_eq!(exact.admitted_rate_bps(), 10_000_000);
    exact
        .try_admit(30_000_000, 4_000, Duration::from_us(50))
        .unwrap();
    assert_eq!(exact.admitted_rate_bps(), 40_000_000);
}

#[test]
fn fast_witness_for_the_same_rejection_is_pinned() {
    let mut fast = Ac3Fast::new(LINK);
    fast.try_admit(10_000_000, 4_000, Duration::from_ms(2))
        .unwrap();
    fast.try_admit(30_000_000, 4_000, Duration::from_us(50))
        .unwrap();
    let err = fast
        .try_admit(30_000_000, 4_000, Duration::from_us(50))
        .unwrap_err();
    let Ac3FastError::Infeasible(w) = err else {
        panic!("expected Infeasible, got {err:?}");
    };
    // Same violating set as the exact enumerator's mask 0b10, expressed
    // class-wise: the one resident (30 Mbit/s, 4000 bit, 50 µs) session
    // plus the candidate.
    assert_eq!(w.candidate.rate_bps, 30_000_000);
    assert_eq!(w.candidate.count, 1);
    assert_eq!(w.classes.len(), 1);
    let c = w.classes[0];
    assert_eq!(
        (c.rate_bps, c.max_len_bits, c.d, c.count),
        (30_000_000, 4_000, Duration::from_us(50), 1)
    );
    assert_eq!(w.num_sessions(), 2);
    assert_eq!(w.violates(LINK), Some(true));
    // The same set does not violate on a 10× link — violates() is a real
    // re-evaluation, not a stored flag.
    assert_eq!(w.violates(LINK * 10), Some(false));
}

#[test]
fn paper_trio_rate_fill_matches_both_backends() {
    // Fill the worked-example server to its rate capacity with three
    // class-shaped reservations; the next bit of rate must fail test
    // (18) identically on both backends.
    let mut exact = Ac3Admission::new(LINK);
    let mut fast = Ac3Fast::new(LINK);
    for (r, d_us) in [
        (10_000_000u64, 200u64),
        (30_000_000, 1_600),
        (60_000_000, 4_000),
    ] {
        let d = Duration::from_us(d_us);
        exact.try_admit(r, 4_000, d).unwrap();
        fast.try_admit(r, 4_000, d).unwrap();
    }
    assert_eq!(exact.admitted_rate_bps(), LINK);
    assert_eq!(fast.admitted_rate_bps(), LINK);
    assert_eq!(
        exact
            .try_admit(1_000, 400, Duration::from_ms(4))
            .unwrap_err(),
        Ac3Error::RateExceeded
    );
    assert_eq!(
        fast.try_admit(1_000, 400, Duration::from_ms(4))
            .unwrap_err(),
        Ac3FastError::RateExceeded
    );
}
