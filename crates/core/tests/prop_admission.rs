//! Property tests: the admission-control procedures keep their invariants
//! under arbitrary admit/release interleavings.

#![forbid(unsafe_code)]

use lit_core::{ClassedAdmission, ConnectionManager, DRule, DelayClass, Procedure, SessionRequest};
use lit_net::DelayAssignment;
use lit_prop::{check, Gen};
use lit_sim::Duration;

/// A random-but-valid class ladder over a 10 Mbit/s link.
fn gen_classes(g: &mut Gen) -> Vec<DelayClass> {
    let n = g.size(1, 5);
    let link = 10_000_000u64;
    let mut bw = 0u64;
    let mut sigma = 0u64;
    let mut classes: Vec<DelayClass> = (0..n)
        .map(|_| {
            let b = g.range(1, 101);
            let s = g.range(1, 50_001);
            bw = (bw + b * link / 100).min(link);
            sigma += s;
            DelayClass {
                max_bandwidth_bps: bw,
                base_delay: Duration::from_us(sigma),
            }
        })
        .collect();
    classes.last_mut().unwrap().max_bandwidth_bps = link;
    classes
}

/// After any sequence of *accepted* admissions, the paper's tests
/// (1.1) and (1.2)/(2.2) hold on the final state — re-derived here
/// from scratch.
#[test]
fn accepted_state_always_satisfies_the_tests() {
    check("accepted_state_always_satisfies_the_tests", |g| {
        let classes = gen_classes(g);
        let procedure = *g.pick(&[Procedure::Proc1, Procedure::Proc2]);
        let n_reqs = g.size(1, 40);
        let reqs: Vec<(usize, u64, u32)> = (0..n_reqs)
            .map(|_| {
                (
                    g.size(0, 5),
                    g.range(10_000, 2_000_000),
                    g.range(100, 2_000) as u32,
                )
            })
            .collect();
        let link = 10_000_000u64;
        let p = classes.len();
        let mut ac = ClassedAdmission::new(procedure, link, classes.clone()).unwrap();
        // Shadow bookkeeping of accepted sessions.
        let mut rate_in = vec![0u64; p];
        let mut bits_in = vec![0u64; p];
        for (class_raw, rate, len) in reqs {
            let class = class_raw % p;
            let req = SessionRequest::new(rate, len);
            if ac.try_admit(class, &req, DRule::PerSessionMax).is_ok() {
                rate_in[class] += rate;
                bits_in[class] += len as u64;
            }
        }
        // Re-derive test (1.1) for every m.
        let mut cum_rate = 0u64;
        for m in 0..p {
            cum_rate += rate_in[m];
            assert!(
                cum_rate <= classes[m].max_bandwidth_bps,
                "test 1.1 violated at class {m}"
            );
        }
        // Re-derive the base-delay test: (1.2) up to P−1, (2.2) up to P.
        let last = match procedure {
            Procedure::Proc1 => p.saturating_sub(1),
            Procedure::Proc2 => p,
        };
        let mut cum_bits = 0u64;
        for m in 0..last {
            cum_bits += bits_in[m];
            let needed = Duration::from_bits_at_rate(cum_bits, link);
            assert!(
                needed <= classes[m].base_delay,
                "base-delay test violated at class {m}: {needed} > {}",
                classes[m].base_delay
            );
        }
    });
}

/// Churn: arbitrary admit/release interleavings on [`ClassedAdmission`]
/// (both procedures × both `DRule`s) keep `admitted_rate_bps` equal to
/// the shadow sum of live sessions at every step, return it exactly to
/// zero after a full drain, and never underflow the per-class
/// accounting (an underflow panics inside `release`, failing the test).
#[test]
fn classed_admission_churn_conserves_rate() {
    check("classed_admission_churn_conserves_rate", |g| {
        let classes = gen_classes(g);
        let p = classes.len();
        let procedure = *g.pick(&[Procedure::Proc1, Procedure::Proc2]);
        let rule = *g.pick(&[DRule::PerPacket, DRule::PerSessionMax]);
        let mut ac = ClassedAdmission::new(procedure, 10_000_000, classes).unwrap();
        let mut live: Vec<(usize, SessionRequest)> = Vec::new();
        let mut shadow = 0u64;
        let mut first_accept: Option<(usize, SessionRequest)> = None;
        let steps = g.size(1, 60);
        for _ in 0..steps {
            let admit = live.is_empty() || g.weighted(&[2, 1]) == 0;
            if admit {
                let class = g.below(p as u64) as usize;
                let req =
                    SessionRequest::new(g.range(10_000, 2_000_000), g.range(100, 2_000) as u32);
                if ac.try_admit(class, &req, rule).is_ok() {
                    shadow += req.rate_bps;
                    live.push((class, req));
                    first_accept.get_or_insert((class, req));
                }
            } else {
                let (class, req) = live.swap_remove(g.below(live.len() as u64) as usize);
                ac.release(class, &req);
                shadow -= req.rate_bps;
            }
            assert_eq!(ac.admitted_rate_bps(), shadow, "rate accounting drifted");
        }
        // Full drain: the server returns exactly to zero committed rate...
        for (class, req) in live.drain(..) {
            ac.release(class, &req);
        }
        assert_eq!(ac.admitted_rate_bps(), 0, "drain left residual rate");
        // ...and to full capacity: anything it ever accepted is
        // acceptable again on the emptied server.
        if let Some((class, req)) = first_accept {
            assert!(
                ac.try_admit(class, &req, rule).is_ok(),
                "emptied server rejects a previously accepted request"
            );
        }
    });
}

/// The granted d is always at least the class's structural minimum
/// and increases (weakly) with the class index.
#[test]
fn granted_d_is_monotone_in_class() {
    check("granted_d_is_monotone_in_class", |g| {
        let classes = gen_classes(g);
        let rate = g.range(10_000, 2_000_000);
        let len = g.range(100, 2_000) as u32;
        for procedure in [Procedure::Proc1, Procedure::Proc2] {
            let ac = ClassedAdmission::new(procedure, 10_000_000, classes.clone()).unwrap();
            let req = SessionRequest::new(rate, len);
            let mut prev: Option<Duration> = None;
            for class in 0..classes.len() {
                let a = ac.d_assignment(class, &req, DRule::PerSessionMax);
                let d = match a {
                    DelayAssignment::Fixed(d) => d,
                    _ => unreachable!("PerSessionMax grants Fixed"),
                };
                if let Some(p) = prev {
                    assert!(d >= p, "d not monotone across classes");
                }
                prev = Some(d);
            }
        }
    });
}

/// Establish/teardown through the ConnectionManager never leaks or
/// double-frees capacity, for arbitrary route/rate mixes.
#[test]
fn connection_manager_conserves_capacity() {
    check("connection_manager_conserves_capacity", |g| {
        let n_steps = g.size(1, 60);
        let script: Vec<(usize, usize, u64)> = (0..n_steps)
            .map(|_| (g.size(0, 5), g.size(0, 5), g.range(10_000, 800_000)))
            .collect();
        let mut cm = ConnectionManager::one_class(5, 1_536_000);
        let mut live = Vec::new();
        let mut shadow = [0u64; 5]; // committed rate per node
        for (a, b, rate) in script {
            let (lo, hi) = (a.min(b), a.max(b));
            let route: Vec<usize> = (lo..=hi).collect();
            let req = SessionRequest::new(rate, 424);
            match cm.establish(&route, 0, req, DRule::PerPacket) {
                Ok(c) => {
                    for &n in &c.route {
                        shadow[n] += rate;
                    }
                    live.push(c);
                }
                Err(_) => {
                    if let Some(c) = live.pop() {
                        for &n in &c.route {
                            shadow[n] -= c.request.rate_bps;
                        }
                        cm.teardown(&c);
                    }
                }
            }
            for (n, &committed) in shadow.iter().enumerate() {
                assert_eq!(cm.node(n).admitted_rate_bps(), committed);
                assert!(committed <= 1_536_000);
            }
        }
    });
}
