//! Differential pin: [`Ac3Fast`] against the exact `2^n` enumerator.
//!
//! Random admit/teardown interleavings drive both procedure-3 backends
//! in lockstep over the same request stream and assert, after every
//! operation:
//!
//! * identical accept/reject decisions and identical granted
//!   [`DelayAssignment`]s;
//! * aligned rejection reasons, and on `SubsetInfeasible`/`Infeasible`
//!   that *both* reported violating sets genuinely violate ineq. (19)
//!   when re-evaluated from scratch;
//! * identical `admitted_rate_bps` and session counts, returning exactly
//!   to zero after a full drain.
//!
//! Residency is capped at `|φ| ≤ 12`, where the exact enumerator is the
//! ground truth (`2^12` subsets per decision) and the fast path's
//! Gray-code stage is provably exact. A second suite forces every fast
//! decision through the branch-and-bound fallback
//! (`with_exhaustive_limit(0)`), pinning the beyond-the-limit path to
//! the same oracle.
//!
//! Generator ranges keep every cross-multiplied product inside `u128`
//! (`C ≤ 2^33`, `L ≤ 2^20`, `d ≤ ~2^54 ps`, `Σr ≤ C`, 13 sessions), so
//! neither backend can hit its overflow guard and the comparison is
//! always of real decisions.

#![forbid(unsafe_code)]

use lit_core::{Ac3Admission, Ac3Error, Ac3Fast, Ac3FastError, Ac3Handle};
use lit_net::DelayAssignment;
use lit_prop::{check, Gen};
use lit_sim::{Duration, PS_PER_SEC};

/// Most sessions resident at once: the exact oracle's comfort zone.
const MAX_RESIDENT: usize = 12;

/// One live session as the harness tracks it: parameters, the fast
/// backend's handle, in a vector whose order mirrors the exact
/// enumerator's internal `swap_remove` order exactly.
#[derive(Clone, Copy)]
struct Live {
    rate_bps: u64,
    len_bits: u32,
    d: Duration,
    handle: Ac3Handle,
}

/// Exactly re-evaluate ineq. (19) for the exact enumerator's reported
/// mask (over `mirror` order) plus the candidate.
fn mask_violates(link_bps: u64, mirror: &[Live], mask: u64, cand: (u64, u32, Duration)) -> bool {
    let mut sum_l = cand.1 as u128;
    let mut sum_r = cand.0 as u128;
    let mut sum_rd = cand.0 as u128 * cand.2.as_ps() as u128;
    for (i, s) in mirror.iter().enumerate() {
        if mask & (1 << i) != 0 {
            sum_l += s.len_bits as u128;
            sum_r += s.rate_bps as u128;
            sum_rd += s.rate_bps as u128 * s.d.as_ps() as u128;
        }
    }
    sum_l * sum_r * PS_PER_SEC as u128 > link_bps as u128 * sum_rd
}

/// A random request. A small per-run palette forces repeated parameter
/// classes (exercising the fast path's all-or-none aggregation); fresh
/// draws mix feasible, boundary-tight, and fully random `d` styles.
fn gen_request(g: &mut Gen, link_bps: u64, palette: &[(u64, u32, u64)]) -> (u64, u32, Duration) {
    if !palette.is_empty() && g.bool() {
        let &(r, l, d_ps) = g.pick(palette);
        return (r, l, Duration::from_ps(d_ps));
    }
    let (r, l, d_ps) = gen_triple(g, link_bps);
    (r, l, Duration::from_ps(d_ps))
}

fn gen_triple(g: &mut Gen, link_bps: u64) -> (u64, u32, u64) {
    let r = match g.weighted(&[3, 2, 1]) {
        // A unit fraction of the link: several sessions fit exactly.
        0 => (link_bps / g.range(2, 33)).max(1),
        1 => g.range(1, link_bps + 1),
        _ => g.range(1, 1 + link_bps / 100).max(1),
    };
    let l = g.range(1, 1_000_001) as u32;
    // L/C in picoseconds — the singleton feasibility floor for d.
    let floor_ps = ((l as u128 * PS_PER_SEC as u128) / link_bps as u128).max(1) as u64;
    let d_ps = match g.weighted(&[3, 3, 2]) {
        // Comfortably feasible: a few × the floor.
        0 => floor_ps.saturating_mul(g.range(1, 17)).max(1),
        // Boundary pressure: within a few ps of the floor, either side.
        1 => {
            let jitter = g.range(0, 5);
            if g.bool() {
                floor_ps.saturating_add(jitter)
            } else {
                floor_ps.saturating_sub(jitter).max(1)
            }
        }
        // Anywhere up to ~2^54 ps (≈ 5 h).
        _ => g.range(1, 1u64 << 54),
    };
    (r, l, d_ps)
}

/// Drive one random interleaving through both backends in lockstep.
fn drive(g: &mut Gen, exhaustive_limit: Option<u32>) {
    // C ≤ 8 Gbit/s keeps all subset products (13 sessions, L ≤ 2^20,
    // d ≤ 2^54 ps) far inside u128 for both implementations.
    let link_bps = g.range(1_000, 8_000_000_000);
    let mut exact = Ac3Admission::new(link_bps);
    let mut fast = Ac3Fast::new(link_bps);
    if let Some(limit) = exhaustive_limit {
        fast = fast.with_exhaustive_limit(limit);
    }
    let n_palette = g.size(0, 4);
    let palette: Vec<(u64, u32, u64)> = (0..n_palette).map(|_| gen_triple(g, link_bps)).collect();
    let mut mirror: Vec<Live> = Vec::new();

    let steps = g.size(1, 48);
    for _ in 0..steps {
        let admit = mirror.is_empty() || (mirror.len() < MAX_RESIDENT && g.weighted(&[2, 1]) == 0);
        if admit {
            // Occasionally a degenerate request: both must reject it as
            // ZeroParameter without touching state.
            let (rate_bps, len_bits, d) = if g.weighted(&[20, 1]) == 1 {
                let mut req = gen_request(g, link_bps, &palette);
                match g.weighted(&[1, 1, 1]) {
                    0 => req.0 = 0,
                    1 => req.1 = 0,
                    _ => req.2 = Duration::ZERO,
                }
                req
            } else {
                gen_request(g, link_bps, &palette)
            };
            let before_rate = exact.admitted_rate_bps();
            let re = exact.try_admit(rate_bps, len_bits, d);
            let rf = fast.try_admit(rate_bps, len_bits, d);
            match (re, rf) {
                (Ok(granted_e), Ok((handle, granted_f))) => {
                    assert_eq!(
                        granted_e, granted_f,
                        "granted assignments diverge for r={rate_bps} L={len_bits} d={d}"
                    );
                    assert_eq!(granted_f, DelayAssignment::Fixed(d));
                    mirror.push(Live {
                        rate_bps,
                        len_bits,
                        d,
                        handle,
                    });
                }
                (Err(ee), Err(ef)) => {
                    match (ee, &ef) {
                        (Ac3Error::ZeroParameter, Ac3FastError::ZeroParameter) => {}
                        (Ac3Error::RateExceeded, Ac3FastError::RateExceeded) => {}
                        (Ac3Error::SubsetInfeasible { mask }, Ac3FastError::Infeasible(w)) => {
                            assert!(
                                mask_violates(link_bps, &mirror, mask, (rate_bps, len_bits, d)),
                                "exact reported a non-violating mask {mask:#b}"
                            );
                            assert_eq!(
                                w.violates(link_bps),
                                Some(true),
                                "fast witness does not violate: {w:?}"
                            );
                        }
                        other => panic!(
                            "reject reasons diverge for r={rate_bps} L={len_bits} d={d}: {other:?}"
                        ),
                    }
                    assert_eq!(
                        exact.admitted_rate_bps(),
                        before_rate,
                        "reject mutated state"
                    );
                }
                (re, rf) => panic!(
                    "decision diverges for r={rate_bps} L={len_bits} d={d} \
                     over {} residents: exact {re:?}, fast {rf:?}",
                    mirror.len()
                ),
            }
        } else {
            let idx = g.below(mirror.len() as u64) as usize;
            let s = mirror[idx];
            assert!(exact.release(idx), "exact release({idx}) failed");
            assert!(fast.release(s.handle), "fast release failed");
            // Mirror the enumerator's swap_remove ordering.
            mirror.swap_remove(idx);
        }
        assert_eq!(exact.admitted_rate_bps(), fast.admitted_rate_bps());
        assert_eq!(exact.len(), fast.len() as usize);
        assert_eq!(exact.len(), mirror.len());
    }

    // Full drain: both return exactly to empty.
    while let Some(s) = mirror.pop() {
        assert!(exact.release(mirror.len()));
        assert!(fast.release(s.handle));
    }
    assert_eq!(exact.admitted_rate_bps(), 0);
    assert_eq!(fast.admitted_rate_bps(), 0);
    assert!(exact.is_empty() && fast.is_empty());
}

#[test]
fn fast_matches_exact_on_random_interleavings() {
    // Default limit: every |φ| ≤ 12 decision takes the provably-exact
    // Gray-code path.
    check("diff_ac3_default_path", |g| drive(g, None));
}

#[test]
fn fallback_path_matches_exact_on_random_interleavings() {
    // exhaustive_limit = 0 forces every decision through the
    // branch-and-bound fallback, pinning the beyond-the-limit path to
    // the same oracle.
    check("diff_ac3_fallback_path", |g| drive(g, Some(0)));
}
