//! # lit-core — the Leave-in-Time service discipline
//!
//! The paper's contribution (Figueira & Pasquale, SIGCOMM '95), complete:
//!
//! * [`ReferenceServer`] — the per-session fixed-rate FCFS server every
//!   guarantee is expressed against (eq. 1);
//! * [`LitDiscipline`] — the scheduler: delay regulators (eq. 6–9),
//!   split deadline/rate clocks `F`/`K` (eq. 10–11), deadline-ordered
//!   service, and the holding-time header stamp for the next hop;
//! * [`ClassedAdmission`] (procedures 1 and 2) and [`Ac3Admission`]
//!   (procedure 3) — the delay-shifting admission control framework,
//!   with [`Ac3Fast`] as the incremental, residency-independent
//!   procedure-3 service and [`Ac3Service`] selecting between them;
//! * [`ConnectionManager`] — all-or-nothing end-to-end establishment with
//!   rollback, per the paper's "satisfied in all the nodes along the
//!   session's route";
//! * [`PathBounds`] — the service commitments as executable formulas:
//!   end-to-end delay (ineq. 12/15), delay distribution (ineq. 16), delay
//!   jitter (ineq. 17), and per-node buffer space.
//!
//! The discipline plugs into a `lit-net` [`lit_net::NetworkBuilder`] via
//! [`LitDiscipline::factory`]. Special case worth knowing: **one admission
//! class + `d = L/r` + no jitter control ≡ VirtualClock**, and then the
//! token-bucket delay bound equals the PGPS/WFQ bound.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod admission;
mod bounds;
mod connection;
mod discipline;
mod refserver;

pub use admission::fast::{Ac3ClassSpec, Ac3Fast, Ac3FastError, Ac3Handle, Ac3Witness};
pub use admission::{
    Ac3Admission, Ac3Backend, Ac3Error, Ac3Service, Ac3ServiceError, Ac3ServiceHandle,
    AdmissionError, ClassedAdmission, ConfigError, DRule, DelayClass, Procedure, SessionRequest,
};
pub use bounds::{as_time, install_oracle_bounds, stop_and_go_comparison, HopSpec, PathBounds};
pub use connection::{Connection, ConnectionManager, EstablishError};
pub use discipline::LitDiscipline;
pub use refserver::{RefOutcome, ReferenceServer};
