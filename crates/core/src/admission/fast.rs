//! Fast incremental admission for procedure 3 — [`Ac3Fast`].
//!
//! [`super::Ac3Admission`] answers ineq. (19) by enumerating every subset
//! `A ⊆ φ` that contains the candidate — `2^{|φ|}` evaluations, capped at
//! 25 resident sessions and with no teardown. This module answers the
//! *same* question with cost independent of the number of resident
//! sessions, so admit/release churn works at millions of sessions.
//!
//! Write `F(A) = PS·(Σ_{s∈A} L_s)(Σ_{s∈A} r_s) − C·Σ_{s∈A} r_s·d_s`
//! (picosecond-scaled, exactly the cross-multiplied form of
//! `Ac3Admission::subset_ok`): the candidate is admissible iff
//! `F(A) ≤ 0` for every `A ∋ candidate`. Three structural facts shrink
//! the search (proofs in DESIGN.md §11):
//!
//! 1. **All-or-none classes.** Adding one more member `s` to a set with
//!    totals `(L, R)` changes `F` by `Δ⁺ = PS·(l_s·R + r_s·L + l_s·r_s) −
//!    C·r_s·d_s`, and removing it changes `F` by `−Δ⁻` with
//!    `Δ⁻ = PS·(l_s·R + r_s·L − l_s·r_s) − C·r_s·d_s ≤ Δ⁺`. If a maximizer
//!    of `F` keeps `s` (`Δ⁻ ≥ 0`), adding an *identical* session can only
//!    help (`Δ⁺ ≥ Δ⁻ ≥ 0`) — so some maximizer takes every session of a
//!    `(r, L, d)`-class or none of them. Sessions therefore aggregate
//!    into classes, and only class subsets matter.
//! 2. **Dominance pruning.** The member gain `Δ⁻` is monotone in the set
//!    totals `(L, R)`. Iterating "drop every class whose members fail
//!    `Δ⁻ ≥ 0` at the current totals", starting from the full set, is a
//!    shrinking iteration of a monotone operator: by induction it never
//!    drops a member of a maximal maximizer, so it converges to a
//!    *superset* of one. Everything pruned is provably irrelevant.
//! 3. **Sorted prefixes.** At the maximizer's own totals ratio
//!    `λ* = L*/R*`, members are exactly the sessions with
//!    `k_s(λ*) = r_s·(PS·l_s + C·d_s)/(l_s + λ*·r_s)` below a threshold —
//!    a prefix of the sort by `k_s(λ*)`. Violating sets, when they
//!    exist, live at the front of that order.
//!
//! The decision pipeline: aggregate resident sessions into `(r, L, d)`
//! classes (a [`BTreeMap`], so iteration — and therefore every witness —
//! is deterministic), prune with (2), then if at most
//! [`Ac3Fast::exhaustive_limit`] classes survive, enumerate their subsets
//! Gray-code style — *provably exact* by (1)+(2). Beyond the limit, an
//! equally exact branch-and-bound over classes takes over: DFS in the
//! sorted-prefix order of (3) (so the first descent walks the most
//! violation-prone prefixes), pruning any branch whose optimistic bound
//! `PS·(L_p+L_suffix)(R_p+R_suffix) − C·W_p` cannot go positive. Its
//! worst case is exponential in the *class* count only, fenced by a node
//! budget whose exhaustion is a conservative rejection
//! ([`Ac3FastError::DecisionBudget`] — never observed outside adversarial
//! inputs); the differential suite (`crates/core/tests/diff_ac3.rs`)
//! pins both paths to the exhaustive oracle. Service deployments with a
//! bounded palette of delay classes (the paper's framing) always stay on
//! the Gray-code path.
//!
//! All subset arithmetic is exact `u128`, `checked_*` throughout; any
//! overflow is a conservative [`Ac3FastError::Overflow`] rejection rather
//! than a wrapped comparison.

use lit_net::DelayAssignment;
use lit_sim::{Duration, PS_PER_SEC};
use std::collections::BTreeMap;

/// Picoseconds per second, widened once for the cross-multiplied tests.
const PS: u128 = PS_PER_SEC as u128;

/// Sentinel for "no free slot" in the handle free list.
const NO_SLOT: u32 = u32::MAX;

/// Ceiling on [`Ac3Fast::with_exhaustive_limit`]: `2^20` subset sums is
/// about a millisecond, the most an admit may spend in the exact path.
const MAX_EXHAUSTIVE_LIMIT: u32 = 20;

/// Node budget for the branch-and-bound fallback. `2^21` nodes is twice
/// the Gray-code ceiling's subset count; exhausting it rejects
/// conservatively rather than answering late or wrong.
const BNB_NODE_BUDGET: u64 = 1 << 21;

/// One `(r, L_max, d)` parameter class; the unit of aggregation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct ClassKey {
    rate_bps: u64,
    len_bits: u32,
    d_ps: u64,
}

/// A stable, generation-checked reference to one admitted session.
///
/// Returned by [`Ac3Fast::try_admit`]; spent by [`Ac3Fast::release`].
/// Releasing twice, or releasing a handle from another instance's
/// numbering, safely returns `false` — the generation tag catches reuse.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ac3Handle {
    slot: u32,
    gen: u32,
}

impl Ac3Handle {
    /// Pack into a `u64` for embedding in foreign handle types.
    pub fn to_bits(self) -> u64 {
        (u64::from(self.slot) << 32) | u64::from(self.gen)
    }

    /// Inverse of [`Ac3Handle::to_bits`].
    pub fn from_bits(bits: u64) -> Self {
        Ac3Handle {
            slot: (bits >> 32) as u32,
            gen: bits as u32,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Slot {
    Live { gen: u32, key: ClassKey },
    Free { gen: u32, next: u32 },
}

/// One parameter class of a rejection witness: `count` sessions that all
/// reserved `rate_bps`/`max_len_bits`/`d`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ac3ClassSpec {
    /// Reserved rate `r_s` in bit/s.
    pub rate_bps: u64,
    /// Maximum packet length `L_max,s` in bits.
    pub max_len_bits: u32,
    /// The session's constant delay increment `d_s`.
    pub d: Duration,
    /// How many admitted sessions share these parameters and belong to
    /// the violating set.
    pub count: u64,
}

/// A concrete violating set for ineq. (19): the candidate plus whole
/// parameter classes of already-admitted sessions.
///
/// Unlike the exact enumerator's `SubsetInfeasible { mask }` (a bitmask
/// over session indices), the witness is index-free — it survives
/// arbitrary admit/release churn and stays `O(#classes)` even with
/// millions of resident sessions. [`Ac3Witness::violates`] re-derives the
/// violation from scratch, so tests can hold the implementation to it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ac3Witness {
    /// The candidate session's parameters (`count` is always 1).
    pub candidate: Ac3ClassSpec,
    /// The admitted classes in the violating set, in class-key order.
    pub classes: Vec<Ac3ClassSpec>,
}

impl Ac3Witness {
    /// Total number of sessions in the violating set (candidate included).
    pub fn num_sessions(&self) -> u64 {
        1 + self.classes.iter().map(|c| c.count).sum::<u64>()
    }

    /// Exactly re-evaluate ineq. (19) on this set against capacity
    /// `link_bps`: `Some(true)` iff the set genuinely violates. `None` if
    /// the cross-multiplied products overflow `u128` (never the case for
    /// witnesses produced by [`Ac3Fast`], which rejects with
    /// [`Ac3FastError::Overflow`] before emitting one).
    pub fn violates(&self, link_bps: u64) -> Option<bool> {
        let mut sum_l: u128 = 0;
        let mut sum_r: u128 = 0;
        let mut sum_rd: u128 = 0;
        let one = [self.candidate];
        for c in one.iter().chain(self.classes.iter()) {
            let n = c.count as u128;
            sum_l = sum_l.checked_add((c.max_len_bits as u128).checked_mul(n)?)?;
            sum_r = sum_r.checked_add((c.rate_bps as u128).checked_mul(n)?)?;
            let rd = (c.rate_bps as u128).checked_mul(c.d.as_ps() as u128)?;
            sum_rd = sum_rd.checked_add(rd.checked_mul(n)?)?;
        }
        let lhs = sum_l.checked_mul(sum_r)?.checked_mul(PS)?;
        let rhs = (link_bps as u128).checked_mul(sum_rd)?;
        Some(lhs > rhs)
    }
}

/// Rejections from the fast procedure-3 service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ac3FastError {
    /// The request's rate, maximum length, or `d` is zero.
    ZeroParameter,
    /// Test (18) failed: `Σ r` would exceed `C` (or overflow `u64`).
    RateExceeded,
    /// Ineq. (19) failed; the witness names a concrete violating set.
    Infeasible(Ac3Witness),
    /// A cross-multiplied product exceeded `u128`; the request is
    /// conservatively rejected rather than compared with wrapped values.
    Overflow,
    /// The branch-and-bound fallback hit its node budget before settling
    /// the decision; the request is conservatively rejected. Requires
    /// more than [`Ac3Fast::exhaustive_limit`] surviving classes *and* an
    /// adversarial parameter spread — not reachable from a bounded
    /// service-class palette.
    DecisionBudget,
}

impl std::fmt::Display for Ac3FastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ac3FastError::ZeroParameter => write!(f, "rate, max length and d must be positive"),
            Ac3FastError::RateExceeded => write!(f, "total reserved rate would exceed C"),
            Ac3FastError::Infeasible(w) => write!(
                f,
                "inequality (19) violated by a set of {} sessions in {} classes",
                w.num_sessions(),
                w.classes.len() + 1
            ),
            Ac3FastError::Overflow => {
                write!(
                    f,
                    "admission arithmetic overflowed u128; rejected conservatively"
                )
            }
            Ac3FastError::DecisionBudget => {
                write!(
                    f,
                    "subset search exceeded its node budget; rejected conservatively"
                )
            }
        }
    }
}

impl std::error::Error for Ac3FastError {}

/// Per-class aggregate used by one admission decision: the class key, its
/// session count, the per-member `r·d` product, and the class totals.
#[derive(Clone, Copy)]
struct Agg {
    key: ClassKey,
    count: u64,
    /// `r·d` of one member, in bit·ps/s.
    w_each: u128,
    /// `count · L` in bits.
    tot_l: u128,
    /// `count · r` in bit/s.
    tot_r: u128,
    /// `count · r·d`.
    tot_w: u128,
}

/// Incremental admission control procedure 3 with teardown.
///
/// Same contract as [`super::Ac3Admission`] — a candidate is admitted iff
/// ineq. (19) holds for every subset containing it — but the decision
/// cost depends on the number of *distinct parameter classes*, not the
/// number of resident sessions, and [`Ac3Fast::release`] returns a
/// session's reservation to the pool in `O(log #classes)`.
///
/// ```
/// use lit_core::admission::fast::Ac3Fast;
/// use lit_sim::Duration;
///
/// let mut ac = Ac3Fast::new(1_536_000);
/// let (h, _) = ac.try_admit(768_000, 424, Duration::from_ms(20)).unwrap();
/// assert_eq!(ac.admitted_rate_bps(), 768_000);
/// assert!(ac.release(h));
/// assert_eq!(ac.admitted_rate_bps(), 0);
/// assert!(!ac.release(h), "handles are single-use");
/// ```
#[derive(Clone, Debug)]
pub struct Ac3Fast {
    link_bps: u64,
    exhaustive_limit: u32,
    admitted_rate_bps: u64,
    live: u64,
    slots: Vec<Slot>,
    free_head: u32,
    classes: BTreeMap<ClassKey, u64>,
}

impl Ac3Fast {
    /// Admission state for a link of capacity `C` bit/s.
    pub fn new(link_bps: u64) -> Self {
        assert!(link_bps > 0, "Ac3Fast: zero link rate");
        Ac3Fast {
            link_bps,
            exhaustive_limit: 16,
            admitted_rate_bps: 0,
            live: 0,
            slots: Vec::new(),
            free_head: NO_SLOT,
            classes: BTreeMap::new(),
        }
    }

    /// Override how many surviving classes the Gray-code enumeration may
    /// cover before branch-and-bound takes over (default 16, clamped to
    /// 20). `0` forces every decision through branch-and-bound — used by
    /// the differential tests to exercise that path.
    pub fn with_exhaustive_limit(mut self, limit: u32) -> Self {
        self.exhaustive_limit = limit.min(MAX_EXHAUSTIVE_LIMIT);
        self
    }

    /// The configured exhaustive-path class ceiling.
    pub fn exhaustive_limit(&self) -> u32 {
        self.exhaustive_limit
    }

    /// Link capacity `C` in bit/s.
    pub fn link_bps(&self) -> u64 {
        self.link_bps
    }

    /// Number of admitted sessions.
    pub fn len(&self) -> u64 {
        self.live
    }

    /// Whether no session is admitted.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total reserved rate (cached; `O(1)`).
    pub fn admitted_rate_bps(&self) -> u64 {
        self.admitted_rate_bps
    }

    /// Number of distinct `(r, L_max, d)` parameter classes currently
    /// admitted — the quantity decision cost actually depends on.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Try to admit a session with rate `rate_bps`, maximum length
    /// `max_len_bits`, and requested constant delay `d`. On success
    /// returns the teardown handle and the granted (fixed) assignment.
    pub fn try_admit(
        &mut self,
        rate_bps: u64,
        max_len_bits: u32,
        d: Duration,
    ) -> Result<(Ac3Handle, DelayAssignment), Ac3FastError> {
        if rate_bps == 0 || max_len_bits == 0 || d == Duration::ZERO {
            return Err(Ac3FastError::ZeroParameter);
        }
        let Some(total_rate) = self.admitted_rate_bps.checked_add(rate_bps) else {
            return Err(Ac3FastError::RateExceeded);
        };
        if total_rate > self.link_bps {
            return Err(Ac3FastError::RateExceeded);
        }
        let d_ps = d.as_ps();
        let key = ClassKey {
            rate_bps,
            len_bits: max_len_bits,
            d_ps,
        };
        self.check_feasible(key)?;
        match self.classes.entry(key) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let n = e.get_mut();
                let Some(next) = n.checked_add(1) else {
                    return Err(Ac3FastError::Overflow);
                };
                *n = next;
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(1);
            }
        }
        self.admitted_rate_bps = total_rate;
        self.live += 1;
        let handle = self.alloc_slot(key);
        Ok((handle, DelayAssignment::Fixed(d)))
    }

    /// Tear down a previously admitted session, returning its reservation
    /// to the pool. `false` if the handle is stale (already released) or
    /// unknown; the instance is unchanged in that case.
    pub fn release(&mut self, handle: Ac3Handle) -> bool {
        let Some(slot) = self.slots.get_mut(handle.slot as usize) else {
            return false;
        };
        let Slot::Live { gen, key } = *slot else {
            return false;
        };
        if gen != handle.gen {
            return false;
        }
        *slot = Slot::Free {
            // A generation that would wrap retires the slot instead (it
            // never re-enters the free list with gen 0 colliding old
            // handles); practically unreachable.
            gen: gen.saturating_add(1),
            next: self.free_head,
        };
        if gen != u32::MAX {
            self.free_head = handle.slot;
        }
        match self.classes.get_mut(&key) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                self.classes.remove(&key);
            }
            // Unreachable: a live slot always has a class entry.
            None => return false,
        }
        self.admitted_rate_bps = self.admitted_rate_bps.saturating_sub(key.rate_bps);
        self.live = self.live.saturating_sub(1);
        true
    }

    fn alloc_slot(&mut self, key: ClassKey) -> Ac3Handle {
        if self.free_head != NO_SLOT {
            let idx = self.free_head;
            if let Some(slot) = self.slots.get_mut(idx as usize) {
                if let Slot::Free { gen, next } = *slot {
                    self.free_head = next;
                    *slot = Slot::Live { gen, key };
                    return Ac3Handle { slot: idx, gen };
                }
            }
        }
        let idx = self.slots.len() as u32;
        self.slots.push(Slot::Live { gen: 0, key });
        Ac3Handle { slot: idx, gen: 0 }
    }

    /// Is ineq. (19) violated for the set with totals `(sum_l, sum_r,
    /// sum_rd)`? Exact cross-multiplied comparison, `Err` on overflow.
    fn violated(&self, sum_l: u128, sum_r: u128, sum_rd: u128) -> Result<bool, Ac3FastError> {
        let lhs = sum_l
            .checked_mul(sum_r)
            .and_then(|p| p.checked_mul(PS))
            .ok_or(Ac3FastError::Overflow)?;
        let rhs = (self.link_bps as u128)
            .checked_mul(sum_rd)
            .ok_or(Ac3FastError::Overflow)?;
        Ok(lhs > rhs)
    }

    /// The full subset test for one candidate class key.
    fn check_feasible(&self, cand: ClassKey) -> Result<(), Ac3FastError> {
        let cl = cand.len_bits as u128;
        let cr = cand.rate_bps as u128;
        // u64×u64 cannot overflow u128.
        let cw = (cand.rate_bps as u128) * (cand.d_ps as u128);

        // Singleton set {candidate}: d ≥ L/C.
        if self.violated(cl, cr, cw)? {
            return Err(Ac3FastError::Infeasible(Ac3Witness {
                candidate: spec_of(cand, 1),
                classes: Vec::new(),
            }));
        }
        if self.classes.is_empty() {
            return Ok(());
        }

        // Aggregate resident sessions into classes (deterministic order).
        let mut aggs: Vec<Agg> = Vec::with_capacity(self.classes.len());
        for (&key, &count) in &self.classes {
            let n = count as u128;
            let w_each = (key.rate_bps as u128) * (key.d_ps as u128);
            let tot_w = w_each.checked_mul(n).ok_or(Ac3FastError::Overflow)?;
            aggs.push(Agg {
                key,
                count,
                w_each,
                // u32×u64 and u64×u64 products fit u128.
                tot_l: (key.len_bits as u128) * n,
                tot_r: (key.rate_bps as u128) * n,
                tot_w,
            });
        }

        // Full-set totals (candidate included).
        let mut tl = cl;
        let mut tr = cr;
        let mut tw = cw;
        for a in &aggs {
            tl = tl.checked_add(a.tot_l).ok_or(Ac3FastError::Overflow)?;
            tr = tr.checked_add(a.tot_r).ok_or(Ac3FastError::Overflow)?;
            tw = tw.checked_add(a.tot_w).ok_or(Ac3FastError::Overflow)?;
        }

        // Dominance pruning (module docs, fact 2): shrink from the full
        // set, dropping classes whose members would lower F at the
        // current totals; re-check the surviving set each round. The
        // first `violated` call also proves the full-set products fit
        // u128, which bounds every subset product below.
        let mut alive = vec![true; aggs.len()];
        loop {
            if self.violated(tl, tr, tw)? {
                return Err(Ac3FastError::Infeasible(witness(cand, &aggs, |i| {
                    alive.get(i).copied().unwrap_or(false)
                })));
            }
            let mut removed = false;
            for (a, flag) in aggs.iter().zip(alive.iter_mut()) {
                if !*flag {
                    continue;
                }
                // Keep s iff removing it would not raise F:
                //   PS·(l·R + r·L − l·r) ≥ C·r·d.
                let l = a.key.len_bits as u128;
                let r = a.key.rate_bps as u128;
                let gain = l
                    .checked_mul(tr)
                    .and_then(|x| x.checked_add(r.checked_mul(tl)?))
                    .and_then(|x| x.checked_sub(l * r))
                    .and_then(|x| x.checked_mul(PS))
                    .ok_or(Ac3FastError::Overflow)?;
                let cost = (self.link_bps as u128)
                    .checked_mul(a.w_each)
                    .ok_or(Ac3FastError::Overflow)?;
                if gain < cost {
                    *flag = false;
                    removed = true;
                    tl -= a.tot_l;
                    tr -= a.tot_r;
                    tw -= a.tot_w;
                }
            }
            if !removed {
                break;
            }
        }
        let pruned: Vec<usize> = (0..aggs.len())
            .filter(|&i| alive.get(i) == Some(&true))
            .collect();
        if pruned.is_empty() {
            return Ok(());
        }

        // Quick accept: if C·d_s ≥ PS·TL for every survivor and the
        // candidate, then for any subset A, C·Σr·d ≥ PS·TL·Σr ≥
        // PS·L_A·R_A — all subsets feasible. (Overflow here only skips
        // the shortcut.)
        if let Some(ps_tl) = tl.checked_mul(PS) {
            let min_cd = pruned
                .iter()
                .filter_map(|&i| aggs.get(i))
                .map(|a| (self.link_bps as u128).checked_mul(a.key.d_ps as u128))
                .chain(std::iter::once(
                    (self.link_bps as u128).checked_mul(cand.d_ps as u128),
                ))
                .try_fold(u128::MAX, |m, v| v.map(|v| m.min(v)));
            if let Some(min_cd) = min_cd {
                if min_cd >= ps_tl {
                    return Ok(());
                }
            }
        }

        if pruned.len() as u32 <= self.exhaustive_limit {
            // Provably exact: some maximal violating set (if any) is a
            // union of whole surviving classes.
            if let Some(inset) = self.exhaustive_reject((cl, cr, cw), &aggs, &pruned) {
                return Err(Ac3FastError::Infeasible(witness(cand, &aggs, |i| {
                    inset.contains(&i)
                })));
            }
            return Ok(());
        }
        if let Some(inset) = self.bnb_reject((cl, cr, cw), &aggs, &pruned)? {
            return Err(Ac3FastError::Infeasible(witness(cand, &aggs, |i| {
                inset.contains(&i)
            })));
        }
        Ok(())
    }

    /// Gray-code enumeration of all subsets of the surviving classes
    /// (candidate always in). Returns the class indices of a violating
    /// set, or `None` if all subsets are feasible. Partial sums are
    /// bounded by the full-set totals whose products were already
    /// overflow-checked, so the inner loop uses plain arithmetic.
    fn exhaustive_reject(
        &self,
        cand: (u128, u128, u128),
        aggs: &[Agg],
        pruned: &[usize],
    ) -> Option<Vec<usize>> {
        let k = pruned.len();
        let (mut sl, mut sr, mut sw) = cand;
        let link = self.link_bps as u128;
        let mut inset = vec![false; k];
        for step in 1..(1u64 << k) {
            let b = step.trailing_zeros() as usize;
            let a = pruned.get(b).and_then(|&i| aggs.get(i))?;
            let flag = inset.get_mut(b)?;
            if *flag {
                sl -= a.tot_l;
                sr -= a.tot_r;
                sw -= a.tot_w;
            } else {
                sl += a.tot_l;
                sr += a.tot_r;
                sw += a.tot_w;
            }
            *flag = !*flag;
            if sl * sr * PS > link * sw {
                return Some(
                    inset
                        .iter()
                        .zip(pruned.iter())
                        .filter(|(f, _)| **f)
                        .map(|(_, &i)| i)
                        .collect(),
                );
            }
        }
        None
    }

    /// Exact branch-and-bound over the surviving classes, for decisions
    /// beyond the Gray-code limit. Every node's partial set (candidate +
    /// included classes) is a real subset, tested exactly; a branch is
    /// pruned when even taking its whole suffix (which maximizes the
    /// `PS·L·R` term) while paying only the already-included `C·W` cost
    /// cannot violate. Classes are visited in ascending sorted-prefix key
    /// `k(λ)` at the full-set ratio — a heuristic for finding violations
    /// on the first descent; exactness never depends on it.
    ///
    /// Returns the class indices of a violating set, `Ok(None)` if all
    /// subsets are provably feasible, or `Err(DecisionBudget)` past
    /// [`BNB_NODE_BUDGET`] nodes. All arithmetic is bounded by the
    /// overflow-checked full-set products.
    fn bnb_reject(
        &self,
        cand: (u128, u128, u128),
        aggs: &[Agg],
        pruned: &[usize],
    ) -> Result<Option<Vec<usize>>, Ac3FastError> {
        let k = pruned.len();
        let link = self.link_bps as u128;
        let (cl, cr, cw) = cand;

        // Branching order: ascending k(λ) = (PS·L + C·d)/(L/r + λ) at
        // λ = L_full/R_full. f64 is fine — this only orders exploration.
        let c_f = self.link_bps as f64;
        let ps_f = PS_PER_SEC as f64;
        let (mut fl, mut fr) = (cl as f64, cr as f64);
        for &i in pruned {
            if let Some(a) = aggs.get(i) {
                fl += a.tot_l as f64;
                fr += a.tot_r as f64;
            }
        }
        let lam = fl / fr;
        let mut order: Vec<usize> = pruned.to_vec();
        order.sort_by(|&a, &b| {
            let key = |i: usize| {
                aggs.get(i).map_or(f64::INFINITY, |a| {
                    let l = a.key.len_bits as f64;
                    let r = a.key.rate_bps as f64;
                    (ps_f * l + c_f * (a.key.d_ps as f64)) / (l / r + lam)
                })
            };
            key(a).total_cmp(&key(b)).then(a.cmp(&b))
        });

        // Suffix totals: suf[p] = Σ over order[p..] of (tot_l, tot_r).
        let mut suf: Vec<(u128, u128)> = vec![(0, 0); k + 1];
        for p in (0..k).rev() {
            let (nl, nr) = suf.get(p + 1).copied().unwrap_or((0, 0));
            let a = order.get(p).and_then(|&i| aggs.get(i));
            let (al, ar) = a.map_or((0, 0), |a| (a.tot_l, a.tot_r));
            if let Some(s) = suf.get_mut(p) {
                *s = (nl + al, nr + ar);
            }
        }

        let (mut sl, mut sr, mut sw) = (cl, cr, cw);
        let mut chosen = vec![false; k];
        let mut nodes: u64 = 0;
        // Explicit DFS: (pos, phase). Phase 0 enters a node, phase 1
        // undoes the include branch and opens the exclude branch.
        let mut stack: Vec<(usize, u8)> = vec![(0, 0)];
        while let Some((pos, phase)) = stack.pop() {
            if phase == 1 {
                if let Some(a) = order.get(pos).and_then(|&i| aggs.get(i)) {
                    sl -= a.tot_l;
                    sr -= a.tot_r;
                    sw -= a.tot_w;
                }
                if let Some(c) = chosen.get_mut(pos) {
                    *c = false;
                }
                stack.push((pos + 1, 0));
                continue;
            }
            nodes += 1;
            if nodes > BNB_NODE_BUDGET {
                return Err(Ac3FastError::DecisionBudget);
            }
            // The partial set is itself a subset containing the candidate.
            if sl * sr * PS > link * sw {
                return Ok(Some(
                    chosen
                        .iter()
                        .zip(order.iter())
                        .filter(|(c, _)| **c)
                        .map(|(_, &i)| i)
                        .collect(),
                ));
            }
            if pos >= k {
                continue;
            }
            // Optimistic bound: take the entire suffix for free.
            let (rl, rr) = suf.get(pos).copied().unwrap_or((0, 0));
            if (sl + rl) * (sr + rr) * PS <= link * sw {
                continue;
            }
            // Include branch first (phase 1 will undo it), then exclude.
            if let Some(a) = order.get(pos).and_then(|&i| aggs.get(i)) {
                sl += a.tot_l;
                sr += a.tot_r;
                sw += a.tot_w;
            }
            if let Some(c) = chosen.get_mut(pos) {
                *c = true;
            }
            stack.push((pos, 1));
            stack.push((pos + 1, 0));
        }
        Ok(None)
    }
}

/// A witness class from a raw key.
fn spec_of(key: ClassKey, count: u64) -> Ac3ClassSpec {
    Ac3ClassSpec {
        rate_bps: key.rate_bps,
        max_len_bits: key.len_bits,
        d: Duration::from_ps(key.d_ps),
        count,
    }
}

/// Assemble a witness from the aggregate table and a membership
/// predicate over aggregate indices.
fn witness(cand: ClassKey, aggs: &[Agg], member: impl Fn(usize) -> bool) -> Ac3Witness {
    Ac3Witness {
        candidate: spec_of(cand, 1),
        classes: aggs
            .iter()
            .enumerate()
            .filter(|(i, _)| member(*i))
            .map(|(_, a)| spec_of(a.key, a.count))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d_equal_len_over_rate_fills_capacity() {
        // Mirror of the exact enumerator's test: d = L/r is always
        // feasible; the full-set test sits exactly at equality.
        let mut ac = Ac3Fast::new(640_000);
        for _ in 0..10 {
            ac.try_admit(64_000, 424, Duration::from_bits_at_rate(424, 64_000))
                .unwrap();
        }
        assert_eq!(ac.admitted_rate_bps(), 640_000);
        assert_eq!(ac.len(), 10);
        assert_eq!(ac.num_classes(), 1);
    }

    #[test]
    fn singleton_bounds_minimum_d() {
        let mut ac = Ac3Fast::new(1_536_000);
        let lmax_ps = Duration::from_bits_at_rate(424, 1_536_000).as_ps();
        let err = ac
            .try_admit(32_000, 424, Duration::from_ps(lmax_ps - 1))
            .unwrap_err();
        let Ac3FastError::Infeasible(w) = err else {
            panic!("expected infeasible, got {err:?}");
        };
        assert!(w.classes.is_empty());
        assert_eq!(w.violates(1_536_000), Some(true));
        assert!(ac
            .try_admit(32_000, 424, Duration::from_ps(lmax_ps))
            .is_ok());
    }

    #[test]
    fn aggressive_d_strands_bandwidth_with_verifiable_witness() {
        let mut ac = Ac3Fast::new(1_536_000);
        ac.try_admit(768_000, 424, Duration::from_us(300)).unwrap();
        let err = ac
            .try_admit(768_000, 424, Duration::from_us(300))
            .unwrap_err();
        let Ac3FastError::Infeasible(w) = err else {
            panic!("expected infeasible, got {err:?}");
        };
        assert_eq!(w.num_sessions(), 2);
        assert_eq!(w.violates(1_536_000), Some(true));
        // With a generous d the pair passes.
        assert!(ac.try_admit(768_000, 424, Duration::from_ms(20)).is_ok());
    }

    #[test]
    fn release_restores_feasibility() {
        let mut ac = Ac3Fast::new(1_536_000);
        let (h, _) = ac.try_admit(768_000, 424, Duration::from_us(300)).unwrap();
        assert!(matches!(
            ac.try_admit(768_000, 424, Duration::from_us(300)),
            Err(Ac3FastError::Infeasible(_))
        ));
        assert!(ac.release(h));
        assert!(!ac.release(h), "double release must fail");
        assert_eq!(ac.admitted_rate_bps(), 0);
        assert!(ac.is_empty());
        let (h2, _) = ac.try_admit(768_000, 424, Duration::from_us(300)).unwrap();
        assert_ne!(h.to_bits(), h2.to_bits(), "generation tag must advance");
    }

    #[test]
    fn handle_round_trips_through_bits() {
        let mut ac = Ac3Fast::new(1_536_000);
        let (h, _) = ac.try_admit(10_000, 400, Duration::from_ms(5)).unwrap();
        assert_eq!(Ac3Handle::from_bits(h.to_bits()), h);
        assert!(ac.release(Ac3Handle::from_bits(h.to_bits())));
    }

    #[test]
    fn rate_test_checks_overflow() {
        // L = 1 bit, d = 1 ps keeps the singleton subset products inside
        // u128 while Σr still wraps u64 on the second admit.
        let mut ac = Ac3Fast::new(u64::MAX);
        ac.try_admit(u64::MAX - 1, 1, Duration::from_ps(1)).unwrap();
        assert_eq!(
            ac.try_admit(u64::MAX - 1, 1, Duration::from_ps(1))
                .unwrap_err(),
            Ac3FastError::RateExceeded
        );
    }

    #[test]
    fn zero_parameters_rejected() {
        let mut ac = Ac3Fast::new(1000);
        for (r, l, d) in [
            (0u64, 424u32, Duration::from_ms(1)),
            (100, 0, Duration::from_ms(1)),
            (100, 424, Duration::ZERO),
        ] {
            assert_eq!(
                ac.try_admit(r, l, d).unwrap_err(),
                Ac3FastError::ZeroParameter
            );
        }
    }

    #[test]
    fn fallback_path_agrees_on_simple_cases() {
        // exhaustive_limit = 0 forces every decision through the
        // branch-and-bound; the full differential pin lives in
        // tests/diff_ac3.rs.
        let mut exact_path = Ac3Fast::new(1_536_000);
        let mut sweep_path = Ac3Fast::new(1_536_000).with_exhaustive_limit(0);
        for (r, l, d) in [
            (100_000u64, 424u32, Duration::from_ms(8)),
            (200_000, 1_000, Duration::from_ms(2)),
            (768_000, 424, Duration::from_us(300)),
            (400_000, 9_000, Duration::from_us(500)),
            (32_000, 424, Duration::from_us(280)),
        ] {
            let a = exact_path.try_admit(r, l, d).is_ok();
            let b = sweep_path.try_admit(r, l, d).is_ok();
            assert_eq!(a, b, "r={r} l={l} d={d}");
        }
    }
}
