//! The Leave-in-Time packet scheduler (paper §2, "Final Version").
//!
//! Per received packet, at server node `n`:
//!
//! * **eligibility** (eq. 6–7): `Eⁿ = tⁿ` for sessions without delay-jitter
//!   control; `Eⁿ = tⁿ + Aⁿ` with the holding time `Aⁿ` stamped by the
//!   upstream node for sessions with jitter control (the delay regulator);
//! * **deadline** (eq. 10–11):
//!   `Fⁿᵢ = max{Eⁿᵢ, Kⁿᵢ₋₁} + dⁿᵢ` and `Kⁿᵢ = max{Eⁿᵢ, Kⁿᵢ₋₁} + Lᵢ/r`,
//!   with `Kⁿ₀ = tⁿ₁`;
//! * eligible packets from all sessions are served in increasing deadline
//!   order (ties FIFO);
//! * at departure (eq. 9) the node stamps the next hop's holding time
//!   `Aⁿ⁺¹ = Fⁿ + L_MAX/Cₙ − F̂ⁿ + dⁿ_max − dⁿᵢ`, where `F̂ⁿ` is the actual
//!   finish time. `Aⁿ⁺¹ ≥ 0` and `F̂ⁿ < Fⁿ + L_MAX/Cₙ` are invariants
//!   (proven in the paper's technical report; asserted here in debug
//!   builds and property-tested).
//!
//! With one admission class, `d = L/r`, and no jitter control, the whole
//! construction collapses to VirtualClock (eq. 2) — tested against the
//! independent VirtualClock implementation in `lit-baselines`.
//!
//! **Packet numbering.** The paper numbers a session's packets "in
//! increasing order as they arrive"; this implementation advances the
//! `K`-recursion in per-node arrival order, which coincides with the
//! global packet index whenever per-session service is FIFO (always true
//! for fixed-size packets, and for any configuration where `dᵢ` makes `F`
//! monotone within a session).

use lit_net::{
    DelayAssignment, Discipline, LinkParams, Packet, ScheduleDecision, SessionId, SessionSpec,
};
use lit_sim::{Duration, Time};

/// Struct-of-arrays per-session state: one flat column per field, indexed
/// by dense `SessionId`. A scan over many sessions (or a batch over one)
/// touches contiguous memory instead of hopping across `Option<Struct>`
/// slots, and every column is a plain fixed-point array the optimizer can
/// keep in registers across a batch.
///
/// `k_prev_ps` holds the eq. 11 recursion state with `0` standing in for
/// "no packet yet": the paper sets `K₀ = t₁`, and since `E₁ ≥ t₁ ≥ 0` the
/// first packet's base `max{E₁, K₀}` equals `max{E₁, 0} = E₁` — exactly
/// what the explicit `Option::None` case computed. No sentinel branch.
#[derive(Default)]
struct SessionCols {
    /// Slot occupancy; a packet from a vacant slot is a wiring bug.
    occupied: Vec<bool>,
    /// Whether the session requested delay-jitter control (eq. 7 vs 6).
    jitter: Vec<bool>,
    /// Reserved rate `r_s` in bit/s — the eq. 11 `L/r` clock.
    rate_bps: Vec<u64>,
    /// Per-hop delay assignment, lowered to fixed-point coefficients:
    /// `d_ps(len) = (len·num_ps + den/2)/den + base_ps`.
    d_num_ps: Vec<u128>,
    d_den: Vec<u128>,
    d_base_ps: Vec<u64>,
    /// `d_max,s` at this node — enters the holding-time stamp (eq. 9).
    d_max_ps: Vec<u64>,
    /// `K_{i-1,s}` in ps; `0` before the first packet (see above).
    k_prev_ps: Vec<u64>,
}

impl SessionCols {
    fn grow(&mut self, idx: usize) {
        if self.occupied.len() <= idx {
            let n = idx + 1;
            self.occupied.resize(n, false);
            self.jitter.resize(n, false);
            self.rate_bps.resize(n, 0);
            self.d_num_ps.resize(n, 0);
            self.d_den.resize(n, 1);
            self.d_base_ps.resize(n, 0);
            self.d_max_ps.resize(n, 0);
            self.k_prev_ps.resize(n, 0);
        }
    }
}

/// One Leave-in-Time scheduler instance (one per server node).
pub struct LitDiscipline {
    link: LinkParams,
    /// Dense per-session columns, indexed by `SessionId`.
    cols: SessionCols,
}

impl LitDiscipline {
    /// A scheduler for a node with the given outgoing link.
    pub fn new(link: LinkParams) -> Self {
        LitDiscipline {
            link,
            cols: SessionCols::default(),
        }
    }

    /// A boxed factory suitable for [`lit_net::NetworkBuilder::build`].
    pub fn factory() -> impl Fn(&LinkParams) -> Box<dyn Discipline> {
        |link: &LinkParams| Box::new(LitDiscipline::new(*link)) as Box<dyn Discipline>
    }

    /// Occupancy guard shared by the packet-facing entry points.
    #[inline]
    fn check_registered(&self, idx: usize) {
        assert!(
            self.cols.occupied.get(idx).copied().unwrap_or(false),
            "packet from unregistered session"
        );
    }
}

impl Discipline for LitDiscipline {
    fn name(&self) -> &'static str {
        "leave-in-time"
    }

    fn register_session(&mut self, spec: &SessionSpec, delay: &DelayAssignment) {
        let idx = spec.id.index();
        let c = &mut self.cols;
        c.grow(idx);
        let coeffs = delay.coeffs(spec.rate_bps);
        // Registration-time writes, in-bounds by the grow() above.
        // lit-lint: allow(no-panic-hot-path, "in-bounds by grow(idx) directly above")
        c.occupied[idx] = true;
        // lit-lint: allow(no-panic-hot-path, "in-bounds by grow(idx) directly above")
        c.jitter[idx] = spec.jitter_control;
        // lit-lint: allow(no-panic-hot-path, "in-bounds by grow(idx) directly above")
        c.rate_bps[idx] = spec.rate_bps;
        // lit-lint: allow(no-panic-hot-path, "in-bounds by grow(idx) directly above")
        c.d_num_ps[idx] = coeffs.num_ps;
        // lit-lint: allow(no-panic-hot-path, "in-bounds by grow(idx) directly above")
        c.d_den[idx] = coeffs.den;
        // lit-lint: allow(no-panic-hot-path, "in-bounds by grow(idx) directly above")
        c.d_base_ps[idx] = coeffs.base_ps;
        // lit-lint: allow(no-panic-hot-path, "in-bounds by grow(idx) directly above")
        c.d_max_ps[idx] = delay.d_max(spec.max_len_bits, spec.rate_bps).as_ps();
        // Fresh K-recursion: a reused slot must start at K₀ = t₁.
        // lit-lint: allow(no-panic-hot-path, "in-bounds by grow(idx) directly above")
        c.k_prev_ps[idx] = 0;
    }

    fn unregister_session(&mut self, id: SessionId) {
        if let Some(slot) = self.cols.occupied.get_mut(id.index()) {
            *slot = false;
        }
    }

    fn on_arrival(&mut self, pkt: &mut Packet, now: Time) -> ScheduleDecision {
        let idx = pkt.session.index();
        self.check_registered(idx);
        let c = &mut self.cols;

        // Eligibility: eq. (6) / (7). `pkt.hold` is Aⁿ from upstream
        // (zero at the first hop per eq. 8).
        // lit-lint: allow(no-panic-hot-path, "in-bounds: check_registered proved occupied[idx], and all columns share one length")
        let eligible = if c.jitter[idx] { now + pkt.hold } else { now };

        // Deadline: eq. (10)–(11), with K₀ = t₁ making the first base
        // simply E₁ (since E₁ ≥ t₁ ≥ 0 = the fresh-slot K value).
        // lit-lint: allow(no-panic-hot-path, "in-bounds: check_registered proved occupied[idx], and all columns share one length")
        let k_prev = c.k_prev_ps[idx];
        let base = eligible.max(Time::from_ps(k_prev));
        // lit-lint: allow(no-panic-hot-path, "in-bounds: check_registered proved occupied[idx], and all columns share one length")
        let rate = c.rate_bps[idx];
        let coeffs = lit_net::DelayCoeffs {
            // lit-lint: allow(no-panic-hot-path, "in-bounds: check_registered proved occupied[idx], and all columns share one length")
            num_ps: c.d_num_ps[idx],
            // lit-lint: allow(no-panic-hot-path, "in-bounds: check_registered proved occupied[idx], and all columns share one length")
            den: c.d_den[idx],
            // lit-lint: allow(no-panic-hot-path, "in-bounds: check_registered proved occupied[idx], and all columns share one length")
            base_ps: c.d_base_ps[idx],
        };
        let d = Duration::from_ps(coeffs.d_ps(pkt.len_bits));
        let f = base + d;
        let k = base + Duration::from_bits_at_rate(pkt.len_bits as u64, rate);
        // lit-lint: allow(no-panic-hot-path, "in-bounds: check_registered proved occupied[idx], and all columns share one length")
        c.k_prev_ps[idx] = k.as_ps();

        pkt.deadline = f;
        pkt.d = d;
        ScheduleDecision::at(eligible, f)
    }

    fn on_arrival_batch(
        &mut self,
        pkts: &mut [Packet],
        now: Time,
        out: &mut Vec<ScheduleDecision>,
    ) {
        let Some(first) = pkts.first() else { return };
        let idx = first.session.index();
        self.check_registered(idx);
        let c = &mut self.cols;

        // Hoist the session's columns into locals once per batch: the
        // eq. 8–11 recursion then runs over plain u64 ps values with no
        // per-packet table loads or enum dispatch. Every arithmetic step
        // is the checked twin of the operator the scalar path uses, so
        // results (and overflow panics) are bit-identical.
        // lit-lint: allow(no-panic-hot-path, "in-bounds: check_registered proved occupied[idx], and all columns share one length")
        let jitter = c.jitter[idx];
        // lit-lint: allow(no-panic-hot-path, "in-bounds: check_registered proved occupied[idx], and all columns share one length")
        let rate = c.rate_bps[idx];
        let coeffs = lit_net::DelayCoeffs {
            // lit-lint: allow(no-panic-hot-path, "in-bounds: check_registered proved occupied[idx], and all columns share one length")
            num_ps: c.d_num_ps[idx],
            // lit-lint: allow(no-panic-hot-path, "in-bounds: check_registered proved occupied[idx], and all columns share one length")
            den: c.d_den[idx],
            // lit-lint: allow(no-panic-hot-path, "in-bounds: check_registered proved occupied[idx], and all columns share one length")
            base_ps: c.d_base_ps[idx],
        };
        // lit-lint: allow(no-panic-hot-path, "in-bounds: check_registered proved occupied[idx], and all columns share one length")
        let mut k_prev = c.k_prev_ps[idx];
        let now_ps = now.as_ps();
        out.reserve(pkts.len());

        // Consecutive equal lengths (the common case: fixed-size cells)
        // reuse the divisions for d and L/r — an amortization the scalar
        // path cannot perform without caching state across calls.
        let mut memo_len = u32::MAX;
        let mut memo_d_ps = 0u64;
        let mut memo_lr_ps = 0u64;
        for pkt in pkts.iter_mut() {
            debug_assert_eq!(pkt.session.index(), idx, "mixed-session batch");
            let e_ps = if jitter {
                now_ps
                    .checked_add(pkt.hold.as_ps())
                    // lit-lint: allow(no-panic-hot-path, "same failure as the scalar path's `now + pkt.hold`: an eligibility past the clock horizon must stop the run")
                    .expect("time overflowed")
            } else {
                now_ps
            };
            if pkt.len_bits != memo_len {
                memo_len = pkt.len_bits;
                memo_d_ps = coeffs.d_ps(memo_len);
                memo_lr_ps = Duration::from_bits_at_rate(memo_len as u64, rate).as_ps();
            }
            let base_ps = e_ps.max(k_prev);
            let f_ps = base_ps
                .checked_add(memo_d_ps)
                // lit-lint: allow(no-panic-hot-path, "same failure as the scalar path's `base + d`: a deadline past the clock horizon must stop the run")
                .expect("time overflowed");
            k_prev = base_ps
                .checked_add(memo_lr_ps)
                // lit-lint: allow(no-panic-hot-path, "same failure as the scalar path's `base + L/r`: a K stamp past the clock horizon must stop the run")
                .expect("time overflowed");
            pkt.deadline = Time::from_ps(f_ps);
            pkt.d = Duration::from_ps(memo_d_ps);
            out.push(ScheduleDecision {
                eligible: Time::from_ps(e_ps),
                key: f_ps as u128,
            });
        }
        // lit-lint: allow(no-panic-hot-path, "in-bounds: check_registered proved occupied[idx], and all columns share one length")
        c.k_prev_ps[idx] = k_prev;
    }

    fn on_departure(&mut self, pkt: &mut Packet, finish: Time) {
        let idx = pkt.session.index();
        self.check_registered(idx);
        // lit-lint: allow(no-panic-hot-path, "in-bounds: check_registered proved occupied[idx], and all columns share one length")
        let d_max = Duration::from_ps(self.cols.d_max_ps[idx]);
        // Holding time for the next hop, eq. (9):
        //   A = (F + L_MAX/C − F̂) + (d_max − d_i).
        // Both parenthesized terms are provably non-negative; computed in
        // signed 128-bit picoseconds and checked.
        let slack_ps = pkt.deadline.as_ps() as i128 + self.link.lmax_time().as_ps() as i128
            - finish.as_ps() as i128;
        // Under an *exact* eligible queue, F̂ < F + L_MAX/C always (the
        // paper's non-saturation invariant; re-checked by the tests via
        // NodeStats::max_lateness). Under an approximate bucketed queue
        // the finish may run late by up to one bucket — the documented
        // emulation error — so the holding time is clamped instead of
        // asserted.
        let spread_ps = d_max.as_ps() as i128 - pkt.d.as_ps() as i128;
        debug_assert!(spread_ps >= 0, "d_i exceeded d_max");
        let hold_ps = (slack_ps + spread_ps).max(0);
        // Unreachable arm: the hold is bounded by d_max plus one link
        // transmission, both far below u64 picoseconds; saturate rather
        // than panic on the hot path if that ever stops holding.
        pkt.hold = match u64::try_from(hold_ps) {
            Ok(ps) => Duration::from_ps(ps),
            Err(_) => Duration::MAX,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lit_net::SessionId;

    fn spec(rate: u64, jc: bool) -> SessionSpec {
        let s = SessionSpec::atm(SessionId(0), rate);
        if jc {
            s.with_jitter_control()
        } else {
            s
        }
    }

    fn mk(jc: bool) -> LitDiscipline {
        let mut d = LitDiscipline::new(LinkParams::paper_t1());
        d.register_session(&spec(32_000, jc), &DelayAssignment::LenOverRate);
        d
    }

    fn pkt(seq: u64) -> Packet {
        Packet::new(SessionId(0), seq, 424, Time::ZERO)
    }

    #[test]
    fn virtualclock_mode_matches_eq2_by_hand() {
        // d = L/r = 13.25 ms. Arrivals at 0, 1 ms, 40 ms.
        // F1 = 0 + 13.25; F2 = max(1, 13.25) + 13.25 = 26.5;
        // F3 = max(40, 26.5) + 13.25 = 53.25.
        let mut disc = mk(false);
        let mut p = pkt(1);
        let dec = disc.on_arrival(&mut p, Time::ZERO);
        assert_eq!(dec.eligible, Time::ZERO);
        assert_eq!(p.deadline, Time::from_us(13_250));

        let mut p = pkt(2);
        disc.on_arrival(&mut p, Time::from_ms(1));
        assert_eq!(p.deadline, Time::from_us(26_500));

        let mut p = pkt(3);
        disc.on_arrival(&mut p, Time::from_ms(40));
        assert_eq!(p.deadline, Time::from_us(53_250));
    }

    #[test]
    fn no_jitter_control_ignores_hold() {
        let mut disc = mk(false);
        let mut p = pkt(1);
        p.hold = Duration::from_ms(5);
        let dec = disc.on_arrival(&mut p, Time::from_ms(10));
        assert_eq!(dec.eligible, Time::from_ms(10));
    }

    #[test]
    fn jitter_control_delays_eligibility_by_hold() {
        let mut disc = mk(true);
        let mut p = pkt(1);
        p.hold = Duration::from_ms(5);
        let dec = disc.on_arrival(&mut p, Time::from_ms(10));
        assert_eq!(dec.eligible, Time::from_ms(15));
        // And the deadline builds on E, not t: F1 = 15 + 13.25 = 28.25 ms.
        assert_eq!(p.deadline, Time::from_us(28_250));
    }

    #[test]
    fn split_clocks_decouple_d_from_rate() {
        // d fixed at 2 ms but K still advances at L/r: the session's
        // long-run throughput claim is unchanged by a small d.
        let mut disc = LitDiscipline::new(LinkParams::paper_t1());
        disc.register_session(
            &spec(32_000, false),
            &DelayAssignment::Fixed(Duration::from_ms(2)),
        );
        // Burst of three at t = 0:
        // K0 = 0; F1 = 0+2 ms, K1 = 13.25 ms;
        // F2 = max(0, 13.25)+2 = 15.25 ms, K2 = 26.5 ms;
        // F3 = 26.5+2 = 28.5 ms.
        let mut p = pkt(1);
        disc.on_arrival(&mut p, Time::ZERO);
        assert_eq!(p.deadline, Time::from_ms(2));
        let mut p = pkt(2);
        disc.on_arrival(&mut p, Time::ZERO);
        assert_eq!(p.deadline, Time::from_us(15_250));
        let mut p = pkt(3);
        disc.on_arrival(&mut p, Time::ZERO);
        assert_eq!(p.deadline, Time::from_us(28_500));
    }

    #[test]
    fn departure_stamps_hold_per_eq9() {
        let mut disc = mk(false);
        let mut p = pkt(1);
        disc.on_arrival(&mut p, Time::ZERO); // F = 13.25 ms, d = 13.25 ms
                                             // Suppose the packet actually finishes at 13 ms (0.25 ms early).
        disc.on_departure(&mut p, Time::from_ms(13));
        // A = F + L_MAX/C − F̂ + (d_max − d)
        //   = 13.25 ms + 0.276042 ms − 13 ms + 0 = 0.526042 ms.
        assert_eq!(p.hold.as_ps(), 526_041_667);
    }

    #[test]
    fn departure_hold_includes_d_spread() {
        // Variable-length packets under rule (1.3): a short packet gets a
        // smaller d, and the difference (d_max − d_i) is added to A.
        let mut disc = LitDiscipline::new(LinkParams::paper_t1());
        let mut s = SessionSpec::atm(SessionId(0), 32_000);
        s.max_len_bits = 848;
        disc.register_session(&s, &DelayAssignment::LenOverRate);
        let mut p = Packet::new(SessionId(0), 1, 424, Time::ZERO);
        disc.on_arrival(&mut p, Time::ZERO); // d = 13.25 ms; d_max = 26.5 ms
        let f = p.deadline;
        disc.on_departure(&mut p, f); // F̂ = F exactly
                                      // A = L_MAX/C + (26.5 − 13.25) ms.
        let want = LinkParams::paper_t1().lmax_time() + Duration::from_us(13_250);
        assert_eq!(p.hold, want);
    }

    #[test]
    #[should_panic(expected = "unregistered session")]
    fn unregistered_session_panics() {
        let mut disc = LitDiscipline::new(LinkParams::paper_t1());
        let mut p = pkt(1);
        disc.on_arrival(&mut p, Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "unregistered session")]
    fn unregistered_after_teardown_panics() {
        let mut disc = mk(false);
        disc.unregister_session(SessionId(0));
        let mut p = pkt(1);
        disc.on_arrival(&mut p, Time::ZERO);
    }

    #[test]
    fn reregistered_slot_restarts_k_recursion() {
        // Advance the K recursion, tear the session down, and register a
        // new session in the same slot: its first packet must see
        // K₀ = t₁ (deadline = E + d), not the previous tenant's K.
        let mut disc = mk(false);
        let mut p = pkt(1);
        disc.on_arrival(&mut p, Time::ZERO); // K₁ = 13.25 ms
        disc.unregister_session(SessionId(0));
        disc.register_session(&spec(32_000, false), &DelayAssignment::LenOverRate);
        let mut p = pkt(1);
        disc.on_arrival(&mut p, Time::from_ms(1));
        // Fresh recursion: F = 1 + 13.25, not max(1, 13.25) + 13.25.
        assert_eq!(p.deadline, Time::from_us(14_250));
    }

    #[test]
    fn batch_matches_scalar_bit_exactly() {
        // Mixed lengths and nonzero upstream holds, jitter control on:
        // the batched eq. 8–11 path must produce the identical decisions,
        // deadlines, d stamps, and K recursion as per-packet calls.
        let lens: [u32; 7] = [424, 424, 424, 848, 848, 212, 424];
        let run = |batched: bool| {
            let mut disc = LitDiscipline::new(LinkParams::paper_t1());
            let mut s = spec(32_000, true);
            s.max_len_bits = 848;
            disc.register_session(&s, &DelayAssignment::LenOverRate);
            let mut out = Vec::new();
            let mut pkts: Vec<Packet> = lens
                .iter()
                .enumerate()
                .map(|(i, &len)| {
                    let mut p = Packet::new(SessionId(0), i as u64 + 1, len, Time::ZERO);
                    p.hold = Duration::from_us(137 * i as u64);
                    p
                })
                .collect();
            let now = Time::from_ms(3);
            if batched {
                disc.on_arrival_batch(&mut pkts, now, &mut out);
            } else {
                for p in pkts.iter_mut() {
                    let dec = disc.on_arrival(p, now);
                    out.push(dec);
                }
            }
            let stamps: Vec<_> = pkts.iter().map(|p| (p.deadline, p.d)).collect();
            // One more scalar arrival afterwards: the stored K must agree.
            let mut tail = Packet::new(SessionId(0), 99, 424, Time::ZERO);
            let tail_dec = disc.on_arrival(&mut tail, Time::from_secs(1));
            (out, stamps, tail_dec)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn batch_on_empty_slice_is_a_no_op() {
        let mut disc = mk(false);
        let mut out = Vec::new();
        disc.on_arrival_batch(&mut [], Time::ZERO, &mut out);
        assert!(out.is_empty());
    }
}
