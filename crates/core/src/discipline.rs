//! The Leave-in-Time packet scheduler (paper §2, "Final Version").
//!
//! Per received packet, at server node `n`:
//!
//! * **eligibility** (eq. 6–7): `Eⁿ = tⁿ` for sessions without delay-jitter
//!   control; `Eⁿ = tⁿ + Aⁿ` with the holding time `Aⁿ` stamped by the
//!   upstream node for sessions with jitter control (the delay regulator);
//! * **deadline** (eq. 10–11):
//!   `Fⁿᵢ = max{Eⁿᵢ, Kⁿᵢ₋₁} + dⁿᵢ` and `Kⁿᵢ = max{Eⁿᵢ, Kⁿᵢ₋₁} + Lᵢ/r`,
//!   with `Kⁿ₀ = tⁿ₁`;
//! * eligible packets from all sessions are served in increasing deadline
//!   order (ties FIFO);
//! * at departure (eq. 9) the node stamps the next hop's holding time
//!   `Aⁿ⁺¹ = Fⁿ + L_MAX/Cₙ − F̂ⁿ + dⁿ_max − dⁿᵢ`, where `F̂ⁿ` is the actual
//!   finish time. `Aⁿ⁺¹ ≥ 0` and `F̂ⁿ < Fⁿ + L_MAX/Cₙ` are invariants
//!   (proven in the paper's technical report; asserted here in debug
//!   builds and property-tested).
//!
//! With one admission class, `d = L/r`, and no jitter control, the whole
//! construction collapses to VirtualClock (eq. 2) — tested against the
//! independent VirtualClock implementation in `lit-baselines`.
//!
//! **Packet numbering.** The paper numbers a session's packets "in
//! increasing order as they arrive"; this implementation advances the
//! `K`-recursion in per-node arrival order, which coincides with the
//! global packet index whenever per-session service is FIFO (always true
//! for fixed-size packets, and for any configuration where `dᵢ` makes `F`
//! monotone within a session).

use lit_net::{DelayAssignment, Discipline, LinkParams, Packet, ScheduleDecision, SessionSpec};
use lit_sim::{Duration, Time};

/// Per-session scheduling state at one node.
#[derive(Clone, Debug)]
struct SessState {
    rate_bps: u64,
    jitter_control: bool,
    delay: DelayAssignment,
    /// `d_max,s` at this node — enters the holding-time stamp (eq. 9).
    d_max: Duration,
    /// `K_{i-1,s}`; `None` before the first packet (`K_0 = t_1`).
    k_prev: Option<Time>,
}

/// One Leave-in-Time scheduler instance (one per server node).
pub struct LitDiscipline {
    link: LinkParams,
    /// Dense per-session state, indexed by `SessionId`.
    sessions: Vec<Option<SessState>>,
}

impl LitDiscipline {
    /// A scheduler for a node with the given outgoing link.
    pub fn new(link: LinkParams) -> Self {
        LitDiscipline {
            link,
            sessions: Vec::new(),
        }
    }

    /// A boxed factory suitable for [`lit_net::NetworkBuilder::build`].
    pub fn factory() -> impl Fn(&LinkParams) -> Box<dyn Discipline> {
        |link: &LinkParams| Box::new(LitDiscipline::new(*link)) as Box<dyn Discipline>
    }

    fn state(&mut self, idx: usize) -> &mut SessState {
        self.sessions
            .get_mut(idx)
            .and_then(Option::as_mut)
            // lit-lint: allow(no-panic-hot-path, "executor invariant: every packet's session id was registered at build; a miss is a wiring bug that must stop the run")
            .expect("packet from unregistered session")
    }
}

impl Discipline for LitDiscipline {
    fn name(&self) -> &'static str {
        "leave-in-time"
    }

    fn register_session(&mut self, spec: &SessionSpec, delay: &DelayAssignment) {
        let idx = spec.id.index();
        if self.sessions.len() <= idx {
            self.sessions.resize_with(idx + 1, || None);
        }
        // lit-lint: allow(no-panic-hot-path, "registration-time write, in-bounds by the resize_with(idx + 1) directly above")
        self.sessions[idx] = Some(SessState {
            rate_bps: spec.rate_bps,
            jitter_control: spec.jitter_control,
            delay: *delay,
            d_max: delay.d_max(spec.max_len_bits, spec.rate_bps),
            k_prev: None,
        });
    }

    fn on_arrival(&mut self, pkt: &mut Packet, now: Time) -> ScheduleDecision {
        let s = self.state(pkt.session.index());

        // Eligibility: eq. (6) / (7). `pkt.hold` is Aⁿ from upstream
        // (zero at the first hop per eq. 8).
        let eligible = if s.jitter_control {
            now + pkt.hold
        } else {
            now
        };

        // Deadline: eq. (10)–(11), with K₀ = t₁ making the first base
        // simply E₁ (since E₁ ≥ t₁).
        let base = match s.k_prev {
            Some(k) => eligible.max(k),
            None => eligible,
        };
        let d = s.delay.d_for(pkt.len_bits, s.rate_bps);
        let f = base + d;
        let k = base + Duration::from_bits_at_rate(pkt.len_bits as u64, s.rate_bps);
        s.k_prev = Some(k);

        pkt.deadline = f;
        pkt.d = d;
        ScheduleDecision::at(eligible, f)
    }

    fn on_departure(&mut self, pkt: &mut Packet, finish: Time) {
        let d_max = self.state(pkt.session.index()).d_max;
        // Holding time for the next hop, eq. (9):
        //   A = (F + L_MAX/C − F̂) + (d_max − d_i).
        // Both parenthesized terms are provably non-negative; computed in
        // signed 128-bit picoseconds and checked.
        let slack_ps = pkt.deadline.as_ps() as i128 + self.link.lmax_time().as_ps() as i128
            - finish.as_ps() as i128;
        // Under an *exact* eligible queue, F̂ < F + L_MAX/C always (the
        // paper's non-saturation invariant; re-checked by the tests via
        // NodeStats::max_lateness). Under an approximate bucketed queue
        // the finish may run late by up to one bucket — the documented
        // emulation error — so the holding time is clamped instead of
        // asserted.
        let spread_ps = d_max.as_ps() as i128 - pkt.d.as_ps() as i128;
        debug_assert!(spread_ps >= 0, "d_i exceeded d_max");
        let hold_ps = (slack_ps + spread_ps).max(0);
        // Unreachable arm: the hold is bounded by d_max plus one link
        // transmission, both far below u64 picoseconds; saturate rather
        // than panic on the hot path if that ever stops holding.
        pkt.hold = match u64::try_from(hold_ps) {
            Ok(ps) => Duration::from_ps(ps),
            Err(_) => Duration::MAX,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lit_net::SessionId;

    fn spec(rate: u64, jc: bool) -> SessionSpec {
        let s = SessionSpec::atm(SessionId(0), rate);
        if jc {
            s.with_jitter_control()
        } else {
            s
        }
    }

    fn mk(jc: bool) -> LitDiscipline {
        let mut d = LitDiscipline::new(LinkParams::paper_t1());
        d.register_session(&spec(32_000, jc), &DelayAssignment::LenOverRate);
        d
    }

    fn pkt(seq: u64) -> Packet {
        Packet::new(SessionId(0), seq, 424, Time::ZERO)
    }

    #[test]
    fn virtualclock_mode_matches_eq2_by_hand() {
        // d = L/r = 13.25 ms. Arrivals at 0, 1 ms, 40 ms.
        // F1 = 0 + 13.25; F2 = max(1, 13.25) + 13.25 = 26.5;
        // F3 = max(40, 26.5) + 13.25 = 53.25.
        let mut disc = mk(false);
        let mut p = pkt(1);
        let dec = disc.on_arrival(&mut p, Time::ZERO);
        assert_eq!(dec.eligible, Time::ZERO);
        assert_eq!(p.deadline, Time::from_us(13_250));

        let mut p = pkt(2);
        disc.on_arrival(&mut p, Time::from_ms(1));
        assert_eq!(p.deadline, Time::from_us(26_500));

        let mut p = pkt(3);
        disc.on_arrival(&mut p, Time::from_ms(40));
        assert_eq!(p.deadline, Time::from_us(53_250));
    }

    #[test]
    fn no_jitter_control_ignores_hold() {
        let mut disc = mk(false);
        let mut p = pkt(1);
        p.hold = Duration::from_ms(5);
        let dec = disc.on_arrival(&mut p, Time::from_ms(10));
        assert_eq!(dec.eligible, Time::from_ms(10));
    }

    #[test]
    fn jitter_control_delays_eligibility_by_hold() {
        let mut disc = mk(true);
        let mut p = pkt(1);
        p.hold = Duration::from_ms(5);
        let dec = disc.on_arrival(&mut p, Time::from_ms(10));
        assert_eq!(dec.eligible, Time::from_ms(15));
        // And the deadline builds on E, not t: F1 = 15 + 13.25 = 28.25 ms.
        assert_eq!(p.deadline, Time::from_us(28_250));
    }

    #[test]
    fn split_clocks_decouple_d_from_rate() {
        // d fixed at 2 ms but K still advances at L/r: the session's
        // long-run throughput claim is unchanged by a small d.
        let mut disc = LitDiscipline::new(LinkParams::paper_t1());
        disc.register_session(
            &spec(32_000, false),
            &DelayAssignment::Fixed(Duration::from_ms(2)),
        );
        // Burst of three at t = 0:
        // K0 = 0; F1 = 0+2 ms, K1 = 13.25 ms;
        // F2 = max(0, 13.25)+2 = 15.25 ms, K2 = 26.5 ms;
        // F3 = 26.5+2 = 28.5 ms.
        let mut p = pkt(1);
        disc.on_arrival(&mut p, Time::ZERO);
        assert_eq!(p.deadline, Time::from_ms(2));
        let mut p = pkt(2);
        disc.on_arrival(&mut p, Time::ZERO);
        assert_eq!(p.deadline, Time::from_us(15_250));
        let mut p = pkt(3);
        disc.on_arrival(&mut p, Time::ZERO);
        assert_eq!(p.deadline, Time::from_us(28_500));
    }

    #[test]
    fn departure_stamps_hold_per_eq9() {
        let mut disc = mk(false);
        let mut p = pkt(1);
        disc.on_arrival(&mut p, Time::ZERO); // F = 13.25 ms, d = 13.25 ms
                                             // Suppose the packet actually finishes at 13 ms (0.25 ms early).
        disc.on_departure(&mut p, Time::from_ms(13));
        // A = F + L_MAX/C − F̂ + (d_max − d)
        //   = 13.25 ms + 0.276042 ms − 13 ms + 0 = 0.526042 ms.
        assert_eq!(p.hold.as_ps(), 526_041_667);
    }

    #[test]
    fn departure_hold_includes_d_spread() {
        // Variable-length packets under rule (1.3): a short packet gets a
        // smaller d, and the difference (d_max − d_i) is added to A.
        let mut disc = LitDiscipline::new(LinkParams::paper_t1());
        let mut s = SessionSpec::atm(SessionId(0), 32_000);
        s.max_len_bits = 848;
        disc.register_session(&s, &DelayAssignment::LenOverRate);
        let mut p = Packet::new(SessionId(0), 1, 424, Time::ZERO);
        disc.on_arrival(&mut p, Time::ZERO); // d = 13.25 ms; d_max = 26.5 ms
        let f = p.deadline;
        disc.on_departure(&mut p, f); // F̂ = F exactly
                                      // A = L_MAX/C + (26.5 − 13.25) ms.
        let want = LinkParams::paper_t1().lmax_time() + Duration::from_us(13_250);
        assert_eq!(p.hold, want);
    }

    #[test]
    #[should_panic(expected = "unregistered session")]
    fn unregistered_session_panics() {
        let mut disc = LitDiscipline::new(LinkParams::paper_t1());
        let mut p = pkt(1);
        disc.on_arrival(&mut p, Time::ZERO);
    }
}
