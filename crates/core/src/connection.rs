//! End-to-end connection establishment.
//!
//! The paper: "A session's connection is established if the admission
//! control tests are satisfied in **all** the nodes along the session's
//! route." This module walks a route's per-node admission controllers,
//! collecting the per-hop delay assignments, and — crucially — **rolls
//! back** every node already committed if a later node rejects, so a
//! failed establishment leaves no stranded reservations.
//!
//! [`ConnectionManager`] owns one [`ClassedAdmission`] per node and hands
//! out [`Connection`] receipts that can later be torn down, returning the
//! resources at every hop.

use crate::admission::{AdmissionError, ClassedAdmission, DRule, SessionRequest};
use lit_net::{DelayAssignment, IdSlab, SessionId};

/// Why an establishment attempt failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EstablishError {
    /// Index *within the requested route* of the node that rejected.
    pub hop: usize,
    /// The node's admission error.
    pub error: AdmissionError,
}

impl std::fmt::Display for EstablishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rejected at hop {}: {}", self.hop, self.error)
    }
}

impl std::error::Error for EstablishError {}

/// A live connection: the route, the class, the request, and the per-hop
/// delay assignments granted at establishment.
#[derive(Clone, Debug)]
pub struct Connection {
    /// Dense session id allocated at establishment; returned to the
    /// manager's [`IdSlab`] at teardown so the next establishment reuses
    /// the slot (and with it every per-session table entry in the
    /// network).
    pub id: SessionId,
    /// Node indices along the route.
    pub route: Vec<usize>,
    /// 0-based admission class used at every hop.
    pub class: usize,
    /// The request as admitted.
    pub request: SessionRequest,
    /// Granted per-hop assignments, parallel to `route` — ready to feed
    /// into [`lit_net::NetworkBuilder::add_session_with_hops`].
    pub assignments: Vec<DelayAssignment>,
}

impl Connection {
    /// `(node, assignment)` pairs in the form the network builder wants.
    pub fn hops(&self) -> Vec<(u32, DelayAssignment)> {
        self.route
            .iter()
            .zip(&self.assignments)
            .map(|(&n, &a)| (n as u32, a))
            .collect()
    }
}

/// Per-network connection admission: one classed admission controller per
/// node.
#[derive(Clone, Debug)]
pub struct ConnectionManager {
    nodes: Vec<ClassedAdmission>,
    /// Session-id allocator: teardown returns ids for reuse, bounding
    /// per-session table capacity by the peak number of live connections.
    ids: IdSlab,
}

impl ConnectionManager {
    /// A manager over the given per-node admission states (index =
    /// node id).
    pub fn new(nodes: Vec<ClassedAdmission>) -> Self {
        ConnectionManager {
            nodes,
            ids: IdSlab::new(),
        }
    }

    /// A manager with `n` identical single-class (VirtualClock-mode)
    /// nodes of capacity `link_bps`.
    pub fn one_class(n: usize, link_bps: u64) -> Self {
        ConnectionManager {
            nodes: (0..n)
                .map(|_| ClassedAdmission::one_class(link_bps))
                .collect(),
            ids: IdSlab::new(),
        }
    }

    /// The session-id allocator (e.g. to inspect the high-water mark —
    /// the bound on every per-session table's capacity).
    pub fn ids(&self) -> &IdSlab {
        &self.ids
    }

    /// Number of managed nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Access a node's admission state (e.g. to inspect committed rate).
    pub fn node(&self, idx: usize) -> &ClassedAdmission {
        &self.nodes[idx]
    }

    /// Attempt to establish a connection for `request` in `class` along
    /// `route`. All-or-nothing: on rejection at hop `k`, hops `0..k` are
    /// released before returning the error.
    ///
    /// # Panics
    /// Panics if the route is empty or names an unknown node.
    pub fn establish(
        &mut self,
        route: &[usize],
        class: usize,
        request: SessionRequest,
        rule: DRule,
    ) -> Result<Connection, EstablishError> {
        assert!(!route.is_empty(), "establish: empty route");
        let mut assignments = Vec::with_capacity(route.len());
        for (hop, &n) in route.iter().enumerate() {
            assert!(n < self.nodes.len(), "establish: unknown node {n}");
            match self.nodes[n].try_admit(class, &request, rule) {
                Ok(a) => assignments.push(a),
                Err(error) => {
                    // Roll back everything committed so far.
                    for &m in &route[..hop] {
                        self.nodes[m].release(class, &request);
                    }
                    return Err(EstablishError { hop, error });
                }
            }
        }
        Ok(Connection {
            id: self.ids.alloc(),
            route: route.to_vec(),
            class,
            request,
            assignments,
        })
    }

    /// Tear a connection down, releasing its reservation at every hop and
    /// returning its session id to the slab for reuse.
    pub fn teardown(&mut self, conn: &Connection) {
        for &n in &conn.route {
            self.nodes[n].release(conn.class, &conn.request);
        }
        self.ids.release(conn.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lit_sim::Duration;

    fn req(rate: u64) -> SessionRequest {
        SessionRequest::new(rate, 424)
    }

    #[test]
    fn establish_grants_per_hop_assignments() {
        let mut cm = ConnectionManager::one_class(5, 1_536_000);
        let conn = cm
            .establish(&[0, 1, 2, 3, 4], 0, req(32_000), DRule::PerPacket)
            .unwrap();
        assert_eq!(conn.assignments.len(), 5);
        assert_eq!(conn.hops().len(), 5);
        let d = conn.assignments[0].d_for(424, 32_000);
        assert_eq!(d, Duration::from_us(13_250)); // L/r
        for n in 0..5 {
            assert_eq!(cm.node(n).admitted_rate_bps(), 32_000);
        }
    }

    #[test]
    fn partial_routes_only_reserve_their_hops() {
        let mut cm = ConnectionManager::one_class(5, 1_536_000);
        cm.establish(&[1, 2], 0, req(100_000), DRule::PerPacket)
            .unwrap();
        assert_eq!(cm.node(0).admitted_rate_bps(), 0);
        assert_eq!(cm.node(1).admitted_rate_bps(), 100_000);
        assert_eq!(cm.node(2).admitted_rate_bps(), 100_000);
        assert_eq!(cm.node(3).admitted_rate_bps(), 0);
    }

    #[test]
    fn rejection_rolls_back_earlier_hops() {
        let mut cm = ConnectionManager::one_class(3, 1_536_000);
        // Fill node 2 completely via a one-hop connection.
        cm.establish(&[2], 0, req(1_536_000), DRule::PerPacket)
            .unwrap();
        // A 3-hop attempt must fail at hop 2 and release hops 0 and 1.
        let err = cm
            .establish(&[0, 1, 2], 0, req(32_000), DRule::PerPacket)
            .unwrap_err();
        assert_eq!(err.hop, 2);
        assert!(matches!(
            err.error,
            AdmissionError::BandwidthExceeded { .. }
        ));
        assert_eq!(cm.node(0).admitted_rate_bps(), 0, "hop 0 not rolled back");
        assert_eq!(cm.node(1).admitted_rate_bps(), 0, "hop 1 not rolled back");
    }

    #[test]
    fn teardown_releases_everything() {
        let mut cm = ConnectionManager::one_class(2, 1_536_000);
        let conn = cm
            .establish(&[0, 1], 0, req(1_536_000), DRule::PerPacket)
            .unwrap();
        // Link is full: a second connection fails.
        assert!(cm.establish(&[0], 0, req(1_000), DRule::PerPacket).is_err());
        cm.teardown(&conn);
        assert!(cm
            .establish(&[0, 1], 0, req(1_536_000), DRule::PerPacket)
            .is_ok());
    }

    #[test]
    fn churn_never_leaks_capacity() {
        // Repeatedly establish/tear down random-ish connections; at the
        // end, after tearing everything down, the full link must be
        // available again at every node.
        let mut cm = ConnectionManager::one_class(4, 1_536_000);
        let mut live = Vec::new();
        for i in 0..200usize {
            let a = i % 4;
            let b = (i * 7 + 1) % 4;
            let (lo, hi) = (a.min(b), a.max(b));
            let route: Vec<usize> = (lo..=hi).collect();
            match cm.establish(&route, 0, req(200_000), DRule::PerPacket) {
                Ok(c) => live.push(c),
                Err(_) => {
                    // Make room by tearing down the oldest connection.
                    if !live.is_empty() {
                        let c = live.remove(0);
                        cm.teardown(&c);
                    }
                }
            }
        }
        for c in live.drain(..) {
            cm.teardown(&c);
        }
        for n in 0..4 {
            assert_eq!(cm.node(n).admitted_rate_bps(), 0, "node {n} leaked");
        }
    }

    #[test]
    fn churn_reuses_session_ids() {
        // Establish/teardown churn with at most 2 concurrent connections:
        // ids must recycle, keeping the high-water mark (and with it the
        // capacity of every per-session table) at the peak live count.
        let mut cm = ConnectionManager::one_class(2, 1_536_000);
        let mut live = std::collections::VecDeque::new();
        for _ in 0..500 {
            if live.len() == 2 {
                let c = live.pop_front().unwrap();
                cm.teardown(&c);
            }
            live.push_back(
                cm.establish(&[0, 1], 0, req(32_000), DRule::PerPacket)
                    .unwrap(),
            );
        }
        assert_eq!(cm.ids().high_water(), 2, "ids leaked under churn");
        assert_eq!(cm.ids().live_count(), 2);
        // A torn-down id is observably reused by the next establishment.
        let c = live.pop_front().unwrap();
        let freed = c.id;
        cm.teardown(&c);
        let c2 = cm
            .establish(&[0], 0, req(32_000), DRule::PerPacket)
            .unwrap();
        assert_eq!(c2.id, freed);
    }

    #[test]
    #[should_panic(expected = "empty route")]
    fn empty_route_panics() {
        let mut cm = ConnectionManager::one_class(1, 1000);
        let _ = cm.establish(&[], 0, req(1), DRule::PerPacket);
    }
}
