//! The analytic service commitments (paper §2, "Service Commitments
//! Provided by Leave-in-Time").
//!
//! Everything is a function of the session's **own** parameters — its
//! reserved rate, packet-length range, per-hop delay assignments — and of
//! static link parameters. No other session appears anywhere: this is the
//! paper's performance-isolation ("firewall") property made executable.
//!
//! Implemented bounds, for a session crossing hops `1..N`:
//!
//! * end-to-end delay (ineq. 12):
//!   `D^{1,N}_max < D^ref_max + β^{1,N} + α^N`, with
//!   `β = Σₙ(L_MAX/Cₙ + Γₙ) + Σ_{n<N} dⁿ_max` (eq. 13) and
//!   `α^N = max_i{d^N_i − L_i/r}`;
//! * token-bucket specialization (ineq. 14–15): `D^ref_max = b₀/r`
//!   (equals the PGPS/WFQ bound when `d = L/r`);
//! * delay distribution (ineq. 16): `P(D > d) ≤ P(D^ref > d − β − α)`;
//! * delay jitter (ineq. 17 and its no-jitter-control sibling);
//! * per-node buffer space (the two unnumbered inequalities).

use lit_net::{DelayAssignment, LinkParams, Network, SessionId};
use lit_sim::{Duration, Time, PS_PER_SEC};

/// One hop as seen by the bound calculator: the node's outgoing link and
/// the session's delay assignment at that node.
#[derive(Clone, Copy, Debug)]
pub struct HopSpec {
    /// Outgoing link of the node (`Cₙ`, `Γₙ`, `L_MAX`).
    pub link: LinkParams,
    /// The session's `d`-assignment at this node.
    pub assignment: DelayAssignment,
}

/// Bound calculator for one session over one path.
///
/// ```
/// use lit_core::{HopSpec, PathBounds};
/// use lit_net::{DelayAssignment, LinkParams};
///
/// // The paper's five-hop voice session: 32 kbit/s, 424-bit cells,
/// // d = L/r at every hop (admission procedure 1, one class).
/// let hop = HopSpec {
///     link: LinkParams::paper_t1(),
///     assignment: DelayAssignment::LenOverRate,
/// };
/// let pb = PathBounds::new(32_000, 424, 424, vec![hop; 5]);
///
/// // Ineq. (15) for a one-cell token bucket: the paper's 72.63 ms.
/// let bound = pb.delay_bound_token_bucket(424);
/// assert!((bound.as_millis_f64() - 72.63).abs() < 0.01);
/// ```
#[derive(Clone, Debug)]
pub struct PathBounds {
    rate_bps: u64,
    max_len_bits: u32,
    min_len_bits: u32,
    hops: Vec<HopSpec>,
}

impl PathBounds {
    /// Build from explicit parameters.
    ///
    /// # Panics
    /// Panics on an empty path, a zero rate, or `min_len > max_len`.
    pub fn new(rate_bps: u64, max_len_bits: u32, min_len_bits: u32, hops: Vec<HopSpec>) -> Self {
        assert!(!hops.is_empty(), "PathBounds: empty path");
        assert!(rate_bps > 0, "PathBounds: zero rate");
        assert!(
            min_len_bits <= max_len_bits,
            "PathBounds: len range inverted"
        );
        PathBounds {
            rate_bps,
            max_len_bits,
            min_len_bits,
            hops,
        }
    }

    /// Build for a session as registered in a [`Network`] — the exact
    /// per-hop assignments and links the scheduler is using.
    pub fn for_session(net: &Network, id: SessionId) -> Self {
        let spec = net.session_spec(id);
        let hops = net
            .session_hops(id)
            .iter()
            .map(|(n, assignment)| HopSpec {
                link: *net.node_link(lit_net::NodeId(*n)),
                assignment: *assignment,
            })
            .collect();
        PathBounds::new(spec.rate_bps, spec.max_len_bits, spec.min_len_bits, hops)
    }

    /// Number of hops `N`.
    pub fn hops(&self) -> usize {
        self.hops.len()
    }

    /// `dⁿ_max` for hop `n` (0-based).
    pub fn d_max(&self, n: usize) -> Duration {
        self.hops[n]
            .assignment
            .d_max(self.max_len_bits, self.rate_bps)
    }

    /// `β^{1,N}` (eq. 13): fixed per-hop overheads plus the delay
    /// increments of all hops but the last.
    pub fn beta(&self) -> Duration {
        let mut beta = Duration::ZERO;
        for h in &self.hops {
            beta += h.link.lmax_time() + h.link.propagation;
        }
        for n in 0..self.hops.len() - 1 {
            beta += self.d_max(n);
        }
        beta
    }

    /// `α^N = max_i { d^N_i − L_i/r }` in signed picoseconds. All three
    /// assignment forms are affine in the packet length, so the maximum is
    /// attained at one of the two length extremes. May be negative (e.g.
    /// `d` fixed below `L_min/r`); the bounds use it signed.
    pub fn alpha_ps(&self) -> i128 {
        let last = &self.hops[self.hops.len() - 1];
        let eval = |len: u32| -> i128 {
            let d = last.assignment.d_for(len, self.rate_bps);
            let lr = Duration::from_bits_at_rate(len as u64, self.rate_bps);
            d.as_ps() as i128 - lr.as_ps() as i128
        };
        eval(self.min_len_bits).max(eval(self.max_len_bits))
    }

    /// `β + α` in signed picoseconds — the shift of ineq. 16 and the
    /// "+ constants" of ineq. 12.
    pub fn shift_ps(&self) -> i128 {
        self.beta().as_ps() as i128 + self.alpha_ps()
    }

    /// `δⁿ_max = L_MAX/Cₙ + dⁿ_max − L_min,s/Cₙ` — hop `n`'s jitter
    /// contribution (0-based).
    pub fn delta_max(&self, n: usize) -> Duration {
        let link = &self.hops[n].link;
        let lmin = Duration::from_bits_at_rate(self.min_len_bits as u64, link.rate_bps);
        link.lmax_time() + self.d_max(n) - lmin
    }

    /// `Δ^{1,n} = Σ_{m=1..n} δᵐ_max` over the first `n` hops (0 ⇒ zero).
    pub fn delta_sum(&self, n: usize) -> Duration {
        (0..n).map(|m| self.delta_max(m)).sum()
    }

    /// Upper bound on end-to-end delay (ineq. 12), given the session's
    /// reference-server delay bound `D^ref_max`.
    pub fn delay_bound(&self, dref_max: Duration) -> Duration {
        let ps = dref_max.as_ps() as i128 + self.shift_ps();
        let ps = u64::try_from(ps.max(0)).expect("delay bound fits u64 ps");
        Duration::from_ps(ps)
    }

    /// Ineq. (15): the delay bound for a session conforming to a token
    /// bucket `(r_s, b₀)`, using `D^ref_max = b₀/r` (eq. 14). With
    /// `d = L/r` at every hop this is exactly the PGPS bound.
    pub fn delay_bound_token_bucket(&self, b0_bits: u64) -> Duration {
        self.delay_bound(Duration::from_bits_at_rate(b0_bits, self.rate_bps))
    }

    /// Upper bound on end-to-end delay **jitter** (max − min delay over
    /// packets). `jitter_control` selects between the paper's two forms:
    /// without control the per-hop contributions accumulate
    /// (`Δ^{1,N} − d^N_max`), with control only the last hop contributes
    /// (`δ^N_max − d^N_max`, ineq. 17).
    pub fn jitter_bound(&self, dref_max: Duration, jitter_control: bool) -> Duration {
        let n = self.hops.len();
        let spread_ps = if jitter_control {
            self.delta_max(n - 1).as_ps() as i128 - self.d_max(n - 1).as_ps() as i128
        } else {
            self.delta_sum(n).as_ps() as i128 - self.d_max(n - 1).as_ps() as i128
        };
        let ps = dref_max.as_ps() as i128 + spread_ps + self.alpha_ps();
        let ps = u64::try_from(ps.max(0)).expect("jitter bound fits u64 ps");
        Duration::from_ps(ps)
    }

    /// Upper bound on the buffer space (bits) the session can occupy at
    /// hop `n` (0-based), per the paper's two unnumbered inequalities:
    ///
    /// * without jitter control: `r·(D^ref_max + Δ^{1,n−1} + L_MAX/Cₙ + dⁿ_max)`;
    /// * with jitter control: `r·(D^ref_max + δ^{n−1}_max + L_MAX/Cₙ + dⁿ_max)`,
    ///
    /// with `δ⁰ = Δ^{1,0} = 0`. Rounded **up** to stay a valid bound.
    pub fn buffer_bound_bits(&self, dref_max: Duration, n: usize, jitter_control: bool) -> u64 {
        let upstream = if n == 0 {
            Duration::ZERO
        } else if jitter_control {
            self.delta_max(n - 1)
        } else {
            self.delta_sum(n)
        };
        let window = dref_max + upstream + self.hops[n].link.lmax_time() + self.d_max(n);
        // ceil(window · r) bits.
        let num = window.as_ps() as u128 * self.rate_bps as u128;
        num.div_ceil(PS_PER_SEC as u128) as u64
    }

    /// Upper bound on the buffer-space *distribution* at hop `n`:
    /// `P(Qⁿ > q) ≤ P(D^ref > q/r − (upstream + L_MAX/Cₙ + dⁿ_max))`.
    ///
    /// The paper states the max-buffer bounds and defers the
    /// distributional version to the first author's dissertation; this is
    /// the reconstruction by the same argument as ineq. (16): the
    /// worst-case window of the session's bits present at node `n` is its
    /// reference-server delay plus the fixed per-hop constants, so
    /// shifting the reference delay CCDF (expressed in bits at rate `r`)
    /// bounds the occupancy CCDF. Validated empirically by the test
    /// suite on shaped arbitrary traffic.
    pub fn buffer_ccdf_bound<F: Fn(Duration) -> f64>(
        &self,
        ref_ccdf: F,
        n: usize,
        jitter_control: bool,
        q_bits: u64,
    ) -> f64 {
        let upstream = if n == 0 {
            Duration::ZERO
        } else if jitter_control {
            self.delta_max(n - 1)
        } else {
            self.delta_sum(n)
        };
        let fixed = upstream + self.hops[n].link.lmax_time() + self.d_max(n);
        // q bits at rate r take q/r seconds to accumulate.
        let q_time = Duration::from_bits_at_rate(q_bits, self.rate_bps);
        match q_time.checked_sub(fixed) {
            Some(arg) => ref_ccdf(arg),
            None => 1.0,
        }
    }

    /// The constants the online conformance oracle checks this session
    /// against: the pathwise/CCDF shift `β + α` and the jitter spread
    /// (the session's jitter bound minus `D^ref_max`, so the oracle can
    /// compare against the *empirical* reference maximum — both bound
    /// forms are pathwise in `D^ref_i`, so the substitution stays a
    /// theorem).
    pub fn oracle_bounds(&self, jitter_control: bool) -> lit_net::SessionBounds {
        let n = self.hops.len();
        let spread_ps = if jitter_control {
            self.delta_max(n - 1).as_ps() as i128 - self.d_max(n - 1).as_ps() as i128
        } else {
            self.delta_sum(n).as_ps() as i128 - self.d_max(n - 1).as_ps() as i128
        };
        lit_net::SessionBounds {
            shift_ps: self.shift_ps(),
            jitter_spread_ps: spread_ps + self.alpha_ps(),
        }
    }

    /// Ineq. (16): upper bound on `P(D^{1,N} > d)` given the CCDF of the
    /// session's delay in its reference server — shift that CCDF right by
    /// `β + α`.
    ///
    /// `ref_ccdf` may be analytic (e.g. `lit_analysis::Md1::sojourn_ccdf`)
    /// or empirical (a measured reference-server histogram — the paper's
    /// "simulated upper bound").
    pub fn delay_ccdf_bound<F: Fn(Duration) -> f64>(&self, ref_ccdf: F, d: Duration) -> f64 {
        let arg_ps = d.as_ps() as i128 - self.shift_ps();
        if arg_ps < 0 {
            // The shift exceeds d: the reference CCDF is evaluated on a
            // negative delay, where P(D^ref > x) = 1.
            1.0
        } else {
            let ps = u64::try_from(arg_ps).expect("CCDF argument fits u64 ps");
            ref_ccdf(Duration::from_ps(ps))
        }
    }
}

/// The Stop-and-Go comparison of paper §4: for a `(r, T)`-smooth session,
/// Stop-and-Go's end-to-end delay is `αHT ± T` with `α ∈ [1, 2)` while the
/// per-link increase of the Leave-in-Time bound is `L_MAX/C + d_max`.
/// Returns `(sng_low, sng_high, lit_bound)` end-to-end bounds over `hops`
/// identical links, reproducing the paper's worked example.
pub fn stop_and_go_comparison(
    frame: Duration,
    hops: usize,
    link: &LinkParams,
    rate_bps: u64,
    d_max: Duration,
) -> (Duration, Duration, Duration) {
    // Stop-and-Go: delay ∈ [αHT − T, αHT + T] with α < 2; take the
    // extremes α = 1 and α → 2.
    let h = hops as u64;
    let sng_low = frame * h - frame;
    let sng_high = frame * (2 * h) + frame;
    // Leave-in-Time (ineq. 15, no propagation as in the paper's footnote):
    // D^ref_max = T (bucket (r, rT)) and per link L_MAX/C + d_max.
    let dref = frame;
    let per_link = link.lmax_time() + d_max;
    let mut lit = dref;
    for _ in 0..hops {
        lit += per_link;
    }
    // The last hop's d_max is not part of β, but α^N = d_max − L/r adds it
    // back for the fixed-d session of the example; keep the simple form.
    let _ = rate_bps;
    (sng_low, sng_high, lit)
}

/// A [`Time`]-anchored helper: the end of a run as a `Time`, for bound
/// comparisons against `SessionStats` extrema.
pub fn as_time(d: Duration) -> Time {
    Time::ZERO + d
}

/// Compute and install the conformance-oracle bound constants for every
/// session of `net`, from the exact per-hop assignments the scheduler is
/// using. Call once after `NetworkBuilder::build` on a network whose
/// oracle is enabled (no-op otherwise). Only meaningful under
/// [`crate::LitDiscipline`] (or VirtualClock, which it subsumes).
pub fn install_oracle_bounds(net: &mut Network) {
    for i in 0..net.num_sessions() {
        let id = SessionId(i as u32);
        let jc = net.session_spec(id).jitter_control;
        let bounds = PathBounds::for_session(net, id).oracle_bounds(jc);
        net.set_session_bounds(id, bounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's five-hop T1 path with `d = L/r` for a 32 kbit/s ATM
    /// session (Fig. 7–8 configuration under AC1/one class).
    fn paper_path(jc: bool) -> PathBounds {
        let _ = jc;
        let hop = HopSpec {
            link: LinkParams::paper_t1(),
            assignment: DelayAssignment::LenOverRate,
        };
        PathBounds::new(32_000, 424, 424, vec![hop; 5])
    }

    #[test]
    fn beta_matches_hand_computation() {
        // β = 5·(L_MAX/C + Γ) + 4·d_max
        //   = 5·(0.276042 ms + 1 ms) + 4·13.25 ms = 59.380208 ms.
        let b = paper_path(false).beta();
        let want = (LinkParams::paper_t1().lmax_time() + Duration::from_ms(1)) * 5
            + Duration::from_us(13_250) * 4;
        assert_eq!(b, want);
        assert!((b.as_millis_f64() - 59.38).abs() < 0.01);
    }

    #[test]
    fn alpha_zero_for_len_over_rate() {
        assert_eq!(paper_path(false).alpha_ps(), 0);
    }

    #[test]
    fn alpha_signed_for_fixed_d() {
        // Fixed d = 2 ms on the last hop, L/r = 13.25 ms ⇒ α = −11.25 ms.
        let mut hops = vec![
            HopSpec {
                link: LinkParams::paper_t1(),
                assignment: DelayAssignment::LenOverRate,
            };
            5
        ];
        hops[4].assignment = DelayAssignment::Fixed(Duration::from_ms(2));
        let pb = PathBounds::new(32_000, 424, 424, hops);
        assert_eq!(pb.alpha_ps(), -(Duration::from_us(11_250).as_ps() as i128));
    }

    #[test]
    fn alpha_uses_length_extremes() {
        // Fixed d with variable lengths: max of d − L/r is at L_min.
        let hop = HopSpec {
            link: LinkParams::paper_t1(),
            assignment: DelayAssignment::Fixed(Duration::from_ms(20)),
        };
        let pb = PathBounds::new(32_000, 848, 424, vec![hop]);
        // α = 20 ms − 424/32000 = 6.75 ms (at L_min).
        assert_eq!(pb.alpha_ps(), Duration::from_us(6_750).as_ps() as i128);
    }

    #[test]
    fn token_bucket_delay_bound_fig7_value() {
        // D < b0/r + β + α = 13.25 + 59.38 + 0 = 72.63 ms for a
        // (32 kbit/s, 424 bit) session on the paper's 5-hop path.
        let pb = paper_path(false);
        let bound = pb.delay_bound_token_bucket(424);
        assert!((bound.as_millis_f64() - 72.63).abs() < 0.01, "{bound}");
    }

    #[test]
    fn jitter_bounds_match_fig8_values() {
        // Paper Fig. 8: upper bound 66.25 ms without jitter control,
        // 13.25 ms with jitter control (D^ref_max = 13.25 ms since the
        // ON-OFF source conforms to (32 kbit/s, 424 bit)).
        let pb = paper_path(false);
        let dref = Duration::from_us(13_250);
        let without = pb.jitter_bound(dref, false);
        let with = pb.jitter_bound(dref, true);
        assert!((without.as_millis_f64() - 66.25).abs() < 0.01, "{without}");
        assert!((with.as_millis_f64() - 13.25).abs() < 0.01, "{with}");
    }

    #[test]
    fn jitter_bound_with_jc_does_not_grow_with_hops() {
        let dref = Duration::from_us(13_250);
        let hop = HopSpec {
            link: LinkParams::paper_t1(),
            assignment: DelayAssignment::LenOverRate,
        };
        let j2 = PathBounds::new(32_000, 424, 424, vec![hop; 2]).jitter_bound(dref, true);
        let j5 = PathBounds::new(32_000, 424, 424, vec![hop; 5]).jitter_bound(dref, true);
        assert_eq!(j2, j5);
        // …while without control it grows linearly.
        let n2 = PathBounds::new(32_000, 424, 424, vec![hop; 2]).jitter_bound(dref, false);
        let n5 = PathBounds::new(32_000, 424, 424, vec![hop; 5]).jitter_bound(dref, false);
        assert!(n5 > n2);
    }

    #[test]
    fn buffer_bounds_first_node_same_with_or_without_jc() {
        // At n = 1 both forms have zero upstream term.
        let pb = paper_path(false);
        let dref = Duration::from_us(13_250);
        let a = pb.buffer_bound_bits(dref, 0, false);
        let b = pb.buffer_bound_bits(dref, 0, true);
        assert_eq!(a, b);
        // r·(13.25 + 0.276042 + 13.25) ms · 32 kbit/s ≈ 856.8 bits.
        assert!((a as f64 - 856.8).abs() < 1.0, "{a}");
    }

    #[test]
    fn buffer_bounds_last_node_jc_much_smaller() {
        let pb = paper_path(false);
        let dref = Duration::from_us(13_250);
        let no_jc = pb.buffer_bound_bits(dref, 4, false);
        let jc = pb.buffer_bound_bits(dref, 4, true);
        assert!(no_jc > jc, "no_jc={no_jc} jc={jc}");
        // Hand values (δ = 13.25 ms exactly since L_min = L_MAX here):
        // without JC r·(13.25 + 4·13.25 + 0.276042 + 13.25) ms ≈ 2552.8
        // bits; with JC r·(13.25 + 13.25 + 0.276042 + 13.25) ms ≈ 1280.8.
        assert_eq!(no_jc, 2553);
        assert_eq!(jc, 1281);
    }

    #[test]
    fn ccdf_bound_shifts_reference() {
        let pb = paper_path(false);
        // A toy reference CCDF: exp(−t/10ms).
        let ref_ccdf = |t: Duration| (-t.as_millis_f64() / 10.0).exp();
        let shift = Duration::from_ps(pb.shift_ps() as u64);
        // Below the shift the bound is 1.
        assert_eq!(
            pb.delay_ccdf_bound(ref_ccdf, shift - Duration::from_ms(1)),
            1.0
        );
        // Above it, it equals the shifted reference.
        let d = shift + Duration::from_ms(10);
        let got = pb.delay_ccdf_bound(ref_ccdf, d);
        assert!((got - (-1.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn buffer_ccdf_bound_degenerates_to_max_bound() {
        // With a deterministic reference CCDF (step at D^ref_max), the
        // distributional bound reaches zero exactly past the max-buffer
        // bound.
        let pb = paper_path(false);
        let dref = Duration::from_us(13_250);
        let step = |t: Duration| if t > dref { 0.0 } else { 1.0 };
        let qmax = pb.buffer_bound_bits(dref, 4, false);
        // Just below the bound the probability is still 1, above it 0.
        assert_eq!(pb.buffer_ccdf_bound(step, 4, false, qmax - 424), 1.0);
        assert_eq!(pb.buffer_ccdf_bound(step, 4, false, qmax + 424), 0.0);
    }

    #[test]
    fn buffer_ccdf_bound_is_one_below_the_fixed_term() {
        let pb = paper_path(false);
        // Tiny q: the fixed per-hop constants alone exceed q/r.
        let any_ccdf = |_t: Duration| 0.123;
        assert_eq!(pb.buffer_ccdf_bound(any_ccdf, 2, false, 1), 1.0);
    }

    #[test]
    fn stop_and_go_example() {
        // Paper §4: 10 packets of 0.01·T·C per T, rate 0.1C. With
        // d = L/r = 0.1T: per-link LiT increase L_MAX/C + 0.1T versus
        // Stop-and-Go's αT ∈ [T, 2T). Take T = 10 ms, C = 1536 kbit/s,
        // H = 5: LiT bound ≈ T + 5·(0.276 ms + 1 ms + ...) — here just
        // check the comparison function orders the schemes as the paper
        // claims for a small L_MAX/C.
        let link = LinkParams::paper_t1();
        let t = Duration::from_ms(10);
        let d_max = Duration::from_ms(1); // 0.1·T
        let (lo, hi, lit) = stop_and_go_comparison(t, 5, &link, 153_600, d_max);
        assert_eq!(lo, Duration::from_ms(40));
        assert_eq!(hi, Duration::from_ms(110));
        // LiT: T + 5·(0.276042 + 1) ms ≈ 16.38 ms — well below S&G's low end.
        assert!(lit < lo, "lit={lit} sng_low={lo}");
    }

    #[test]
    #[should_panic(expected = "empty path")]
    fn empty_path_rejected() {
        let _ = PathBounds::new(32_000, 424, 424, vec![]);
    }
}
