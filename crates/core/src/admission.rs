//! Admission control (paper §2, "The Admission Control Procedures").
//!
//! The per-hop delay increment `d_{i,s}` is a *service parameter*, not a
//! traffic descriptor; assigning it too aggressively saturates the
//! scheduler (packets miss `F + L_MAX/C`). The paper gives three
//! procedures that regulate how small `d` may be, enabling **delay
//! shifting** — lowering some sessions' delays at the expense of others:
//!
//! * [`ClassedAdmission`] with [`Procedure::Proc1`] — classes
//!   `(R_k, σ_k)`; tests (1.1)/(1.2); `d = L·R_j/(r·C) + σ_{j−1} + ε`.
//!   Exploits the full link bandwidth but couples `d` to `L/r`.
//! * [`ClassedAdmission`] with [`Procedure::Proc2`] — same classes; tests
//!   (1.1)/(2.2); `d = L·R_{j−1}/(r·C) + σ_j + ε`. Decouples class-1
//!   sessions from `L/r` (good for low-rate sessions) but requires a large
//!   `σ_P` to use all bandwidth.
//! * [`Ac3Admission`] — arbitrary constant `d_s` per session, guarded by
//!   the subset test (ineq. 19) over all non-empty `A ⊆ φ` — exponential
//!   in the number of sessions, and may strand bandwidth.
//!
//! Class indices are **0-based** in this API; the paper's class `k`
//! is `classes[k-1]`.
//!
//! [`Ac3Admission`] is the *exact oracle*: a literal subset enumeration,
//! kept deliberately simple so the fast path in [`fast`] can be
//! differentially pinned against it (`tests/diff_ac3.rs`). Production
//! call setup goes through [`Ac3Service`], which selects a backend via
//! [`Ac3Backend`] and hands out uniform teardown handles.

pub mod fast;

use fast::{Ac3Fast, Ac3FastError, Ac3Handle};
use lit_net::DelayAssignment;
use lit_sim::{Duration, PS_PER_SEC};

/// A delay class `(R_k, σ_k)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DelayClass {
    /// `R_k` — the maximum bandwidth that may be allocated to sessions in
    /// this class *and all lower-numbered classes* (Figure 5's nesting).
    pub max_bandwidth_bps: u64,
    /// `σ_k` — the base delay of the class.
    pub base_delay: Duration,
}

/// Which of the two classed procedures to enforce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Procedure {
    /// Admission control procedure 1.
    Proc1,
    /// Admission control procedure 2.
    Proc2,
}

/// Whether `d_{i,s}` tracks each packet's length (rules 1.3 / 2.3) or is
/// fixed at the session's maximum length (rules 1.3a / 2.3a).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DRule {
    /// `d_{i,s}` proportional to `L_{i,s}` — rules (1.3) and (2.3).
    PerPacket,
    /// `d_{i,s}` constant, computed from `L_max,s` — rules (1.3a), (2.3a).
    PerSessionMax,
}

/// What a session asks for at connection establishment.
#[derive(Clone, Copy, Debug)]
pub struct SessionRequest {
    /// Reserved rate `r_s` in bits per second.
    pub rate_bps: u64,
    /// Maximum packet length `L_max,s` in bits.
    pub max_len_bits: u32,
    /// The non-negative constant `ε_s` added to `d` (usually zero; used
    /// e.g. to round fixed `d` values up to a supported grid).
    pub epsilon: Duration,
}

impl SessionRequest {
    /// A request with `ε = 0`.
    pub fn new(rate_bps: u64, max_len_bits: u32) -> Self {
        SessionRequest {
            rate_bps,
            max_len_bits,
            epsilon: Duration::ZERO,
        }
    }
}

/// Rejections from the classed procedures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The request's rate is zero.
    ZeroRate,
    /// The class index does not exist.
    UnknownClass,
    /// Test (1.1) failed at the given class: cumulative reserved rate
    /// would exceed `R_m`.
    BandwidthExceeded {
        /// 0-based class index `m` at which the test failed.
        class: usize,
        /// `R_m` in bit/s.
        limit_bps: u64,
        /// The cumulative rate that admission would have produced.
        needed_bps: u64,
    },
    /// Test (1.2)/(2.2) failed at the given class: cumulative `Σ L_max/C`
    /// would exceed `σ_m`.
    BaseDelayExceeded {
        /// 0-based class index `m` at which the test failed.
        class: usize,
        /// `σ_m`.
        limit: Duration,
        /// The cumulative `Σ L_max/C` that admission would have produced.
        needed: Duration,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::ZeroRate => write!(f, "session requested a zero rate"),
            AdmissionError::UnknownClass => write!(f, "no such delay class"),
            AdmissionError::BandwidthExceeded {
                class,
                limit_bps,
                needed_bps,
            } => write!(
                f,
                "test (1.1) failed at class {}: cumulative rate {needed_bps} bit/s > R = {limit_bps} bit/s",
                class + 1
            ),
            AdmissionError::BaseDelayExceeded {
                class,
                limit,
                needed,
            } => write!(
                f,
                "base-delay test failed at class {}: cumulative L_max/C {needed} > sigma = {limit}",
                class + 1
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Invalid class configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// At least one class is required.
    NoClasses,
    /// `R_k` must be non-decreasing in `k`.
    BandwidthNotMonotone,
    /// `σ_k` must be non-decreasing in `k`.
    BaseDelayNotMonotone,
    /// The paper requires `R_P = C`.
    LastClassNotFullLink,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ConfigError::NoClasses => "at least one delay class is required",
            ConfigError::BandwidthNotMonotone => "class bandwidths R_k must be non-decreasing",
            ConfigError::BaseDelayNotMonotone => "class base delays sigma_k must be non-decreasing",
            ConfigError::LastClassNotFullLink => "the last class must have R_P = C",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ConfigError {}

/// Admission control procedures 1 and 2 for one server node.
///
/// ```
/// use lit_core::{ClassedAdmission, DRule, DelayClass, Procedure, SessionRequest};
/// use lit_sim::Duration;
///
/// // The paper's worked example: C = 100 Mbit/s, three classes.
/// let classes = vec![
///     DelayClass { max_bandwidth_bps: 10_000_000, base_delay: Duration::from_us(200) },
///     DelayClass { max_bandwidth_bps: 40_000_000, base_delay: Duration::from_us(1_600) },
///     DelayClass { max_bandwidth_bps: 100_000_000, base_delay: Duration::from_ms(4) },
/// ];
/// let mut ac = ClassedAdmission::new(Procedure::Proc1, 100_000_000, classes).unwrap();
///
/// // A 100 kbit/s session with 400-bit packets admitted to class 1
/// // gets d = L·R1/(r·C) = 0.4 ms (the paper's number).
/// let req = SessionRequest::new(100_000, 400);
/// let granted = ac.try_admit(0, &req, DRule::PerSessionMax).unwrap();
/// assert_eq!(granted.d_for(400, 100_000), Duration::from_us(400));
/// ```
#[derive(Clone, Debug)]
pub struct ClassedAdmission {
    procedure: Procedure,
    link_bps: u64,
    classes: Vec<DelayClass>,
    /// Σ of reserved rates per class.
    rate_in_class: Vec<u64>,
    /// Σ of `L_max,s` (bits) per class — divided by `C` on demand so the
    /// (1.2)/(2.2) sums stay exact.
    lmax_bits_in_class: Vec<u64>,
}

impl ClassedAdmission {
    /// Set up a node's admission state.
    pub fn new(
        procedure: Procedure,
        link_bps: u64,
        classes: Vec<DelayClass>,
    ) -> Result<Self, ConfigError> {
        if classes.is_empty() {
            return Err(ConfigError::NoClasses);
        }
        for w in classes.windows(2) {
            if w[1].max_bandwidth_bps < w[0].max_bandwidth_bps {
                return Err(ConfigError::BandwidthNotMonotone);
            }
            if w[1].base_delay < w[0].base_delay {
                return Err(ConfigError::BaseDelayNotMonotone);
            }
        }
        if classes.last().unwrap().max_bandwidth_bps != link_bps {
            return Err(ConfigError::LastClassNotFullLink);
        }
        let p = classes.len();
        Ok(ClassedAdmission {
            procedure,
            link_bps,
            classes,
            rate_in_class: vec![0; p],
            lmax_bits_in_class: vec![0; p],
        })
    }

    /// Single-class convenience: procedure 1 with `R_1 = C` (and an
    /// irrelevant `σ_1`), the configuration under which Leave-in-Time
    /// reduces to VirtualClock and matches the PGPS bound.
    pub fn one_class(link_bps: u64) -> Self {
        ClassedAdmission::new(
            Procedure::Proc1,
            link_bps,
            vec![DelayClass {
                max_bandwidth_bps: link_bps,
                base_delay: Duration::ZERO,
            }],
        )
        .expect("one-class configuration is always valid")
    }

    /// Number of classes `P`.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Total reserved rate across all classes.
    pub fn admitted_rate_bps(&self) -> u64 {
        self.rate_in_class.iter().sum()
    }

    /// The delay assignment this node *would* give a session of `class`
    /// (0-based), without admitting it. This is the pure rule
    /// (1.3)/(1.3a)/(2.3)/(2.3a) arithmetic, used by the paper's worked
    /// examples.
    pub fn d_assignment(&self, class: usize, req: &SessionRequest, rule: DRule) -> DelayAssignment {
        let (num_bps, sigma) = match self.procedure {
            // Rule (1.3): slope R_j, offset σ_{j-1} (σ_0 = 0).
            Procedure::Proc1 => (
                self.classes[class].max_bandwidth_bps,
                if class == 0 {
                    Duration::ZERO
                } else {
                    self.classes[class - 1].base_delay
                },
            ),
            // Rule (2.3): slope R_{j-1} (R_0 = 0), offset σ_j.
            Procedure::Proc2 => (
                if class == 0 {
                    0
                } else {
                    self.classes[class - 1].max_bandwidth_bps
                },
                self.classes[class].base_delay,
            ),
        };
        let base = sigma + req.epsilon;
        let den = req.rate_bps as u128 * self.link_bps as u128;
        let linear = DelayAssignment::Linear {
            num: num_bps,
            den,
            base,
        };
        match rule {
            DRule::PerPacket => linear,
            DRule::PerSessionMax => {
                DelayAssignment::Fixed(linear.d_for(req.max_len_bits, req.rate_bps))
            }
        }
    }

    /// Try to admit a session into `class` (0-based). On success the
    /// session's resources are recorded and its [`DelayAssignment`] for
    /// this node is returned.
    pub fn try_admit(
        &mut self,
        class: usize,
        req: &SessionRequest,
        rule: DRule,
    ) -> Result<DelayAssignment, AdmissionError> {
        if req.rate_bps == 0 {
            return Err(AdmissionError::ZeroRate);
        }
        if class >= self.classes.len() {
            return Err(AdmissionError::UnknownClass);
        }
        let p = self.classes.len();

        // Test (1.1) for m = j..P (also subsumes the shared rate test (18)
        // because R_P = C): cumulative rate of classes 1..m must fit R_m.
        let mut cum_rate: u64 = self.rate_in_class[..=class].iter().sum();
        cum_rate += req.rate_bps;
        for m in class..p {
            if m > class {
                cum_rate += self.rate_in_class[m];
            }
            let limit = self.classes[m].max_bandwidth_bps;
            if cum_rate > limit {
                return Err(AdmissionError::BandwidthExceeded {
                    class: m,
                    limit_bps: limit,
                    needed_bps: cum_rate,
                });
            }
        }

        // Base-delay test: (1.2) stops at P−1, (2.2) includes P.
        let last_checked = match self.procedure {
            Procedure::Proc1 => p.saturating_sub(1), // exclusive end = P−1
            Procedure::Proc2 => p,
        };
        let mut cum_bits: u64 = self.lmax_bits_in_class[..=class].iter().sum();
        cum_bits += req.max_len_bits as u64;
        for m in class..last_checked {
            if m > class {
                cum_bits += self.lmax_bits_in_class[m];
            }
            let needed = Duration::from_bits_at_rate(cum_bits, self.link_bps);
            let limit = self.classes[m].base_delay;
            if needed > limit {
                return Err(AdmissionError::BaseDelayExceeded {
                    class: m,
                    limit,
                    needed,
                });
            }
        }

        self.rate_in_class[class] += req.rate_bps;
        self.lmax_bits_in_class[class] += req.max_len_bits as u64;
        Ok(self.d_assignment(class, req, rule))
    }

    /// Release a previously admitted session's resources (connection
    /// teardown). The caller must pass the same class and request used at
    /// admission.
    pub fn release(&mut self, class: usize, req: &SessionRequest) {
        self.rate_in_class[class] = self.rate_in_class[class]
            .checked_sub(req.rate_bps)
            .expect("release without matching admit");
        self.lmax_bits_in_class[class] = self.lmax_bits_in_class[class]
            .checked_sub(req.max_len_bits as u64)
            .expect("release without matching admit");
    }
}

/// One admitted session under procedure 3.
#[derive(Clone, Copy, Debug)]
struct Ac3Session {
    rate_bps: u64,
    max_len_bits: u32,
    d: Duration,
}

/// Rejections from procedure 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ac3Error {
    /// The request's rate or `d` is zero.
    ZeroParameter,
    /// Test (18) failed: `Σ r > C`.
    RateExceeded,
    /// Ineq. (19) failed for some subset `A` (the offending subset's
    /// bitmask over *existing* sessions is reported; bit `i` = existing
    /// session `i`, and the candidate is always in `A`).
    SubsetInfeasible {
        /// Bitmask of the violating subset.
        mask: u64,
    },
    /// More sessions than the exhaustive `2^n` test supports.
    TooManySessions,
}

impl std::fmt::Display for Ac3Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ac3Error::ZeroParameter => write!(f, "rate and d must be positive"),
            Ac3Error::RateExceeded => write!(f, "total reserved rate would exceed C"),
            Ac3Error::SubsetInfeasible { mask } => {
                write!(f, "inequality (19) violated for subset mask {mask:#b}")
            }
            Ac3Error::TooManySessions => write!(
                f,
                "exhaustive subset test limited to {} sessions",
                Ac3Admission::MAX_SESSIONS
            ),
        }
    }
}

impl std::error::Error for Ac3Error {}

/// Admission control procedure 3: arbitrary fixed `d_s` per session,
/// guarded by the subset test
///
/// ```text
/// C ≥ (Σ_{s∈A} L_max,s · Σ_{s∈A} r_s) / (Σ_{s∈A} r_s·d_s)   ∀ A ⊆ φ, A ≠ ∅
/// ```
///
/// As the paper notes, there are `2^{|φ|} − 1` subsets; this implementation
/// tests only the `2^{|φ|−1}` subsets containing the *candidate* (every
/// other subset was already verified when its members were admitted), and
/// evaluates the inequality in exact 128-bit integer cross-multiplied form.
#[derive(Clone, Debug)]
pub struct Ac3Admission {
    link_bps: u64,
    sessions: Vec<Ac3Session>,
    /// Running `Σ r` over `sessions`, maintained by admit/release so the
    /// test-(18) check is `O(1)` instead of re-summing `O(n)` per admit.
    admitted_rate_bps: u64,
}

impl Ac3Admission {
    /// Exhaustive-test ceiling: `2^25` subset evaluations ≈ tens of ms.
    pub const MAX_SESSIONS: usize = 25;

    /// Admission state for a link of capacity `C`.
    pub fn new(link_bps: u64) -> Self {
        assert!(link_bps > 0, "Ac3Admission: zero link rate");
        Ac3Admission {
            link_bps,
            sessions: Vec::new(),
            admitted_rate_bps: 0,
        }
    }

    /// Number of admitted sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no session is admitted.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Total reserved rate (cached; `O(1)`).
    pub fn admitted_rate_bps(&self) -> u64 {
        self.admitted_rate_bps
    }

    /// Ineq. (19) for one subset, exactly:
    /// `C · Σ(r·d) ≥ Σ L · Σ r`, with `r·d` in bit·ps and the right side
    /// scaled by `PS_PER_SEC` to match.
    fn subset_ok(&self, candidate: &Ac3Session, mask: u64) -> bool {
        let mut sum_l: u128 = candidate.max_len_bits as u128;
        let mut sum_r: u128 = candidate.rate_bps as u128;
        let mut sum_rd: u128 = candidate.rate_bps as u128 * candidate.d.as_ps() as u128;
        for (i, s) in self.sessions.iter().enumerate() {
            if mask & (1 << i) != 0 {
                sum_l += s.max_len_bits as u128;
                sum_r += s.rate_bps as u128;
                sum_rd += s.rate_bps as u128 * s.d.as_ps() as u128;
            }
        }
        self.link_bps as u128 * sum_rd >= sum_l * sum_r * PS_PER_SEC as u128
    }

    /// Try to admit a session with rate `rate_bps`, maximum length
    /// `max_len_bits`, and requested constant delay `d`.
    pub fn try_admit(
        &mut self,
        rate_bps: u64,
        max_len_bits: u32,
        d: Duration,
    ) -> Result<DelayAssignment, Ac3Error> {
        if rate_bps == 0 || d == Duration::ZERO || max_len_bits == 0 {
            return Err(Ac3Error::ZeroParameter);
        }
        if self.sessions.len() >= Self::MAX_SESSIONS {
            return Err(Ac3Error::TooManySessions);
        }
        // Checked: near-`u64::MAX` rate requests must reject, not wrap
        // past the capacity test.
        let Some(total_rate) = self.admitted_rate_bps.checked_add(rate_bps) else {
            return Err(Ac3Error::RateExceeded);
        };
        if total_rate > self.link_bps {
            return Err(Ac3Error::RateExceeded);
        }
        let candidate = Ac3Session {
            rate_bps,
            max_len_bits,
            d,
        };
        let n = self.sessions.len();
        for mask in 0..(1u64 << n) {
            if !self.subset_ok(&candidate, mask) {
                return Err(Ac3Error::SubsetInfeasible { mask });
            }
        }
        self.sessions.push(candidate);
        self.admitted_rate_bps = total_rate;
        Ok(DelayAssignment::Fixed(d))
    }

    /// Tear down the session at `index` (0-based admission order),
    /// returning its reserved rate to the pool. The *last* admitted
    /// session moves into the freed index (`swap_remove`), which callers
    /// tracking indices — like [`Ac3Service`] — must account for. Returns
    /// `false` (and changes nothing) if `index` is out of range.
    ///
    /// Removing a session only shrinks every subset sum, so no re-check
    /// of ineq. (19) is needed: all remaining subsets stay feasible.
    pub fn release(&mut self, index: usize) -> bool {
        if index >= self.sessions.len() {
            return false;
        }
        let s = self.sessions.swap_remove(index);
        self.admitted_rate_bps -= s.rate_bps;
        true
    }
}

/// Which procedure-3 implementation an [`Ac3Service`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Ac3Backend {
    /// The literal `2^n` subset enumeration ([`Ac3Admission`]) — the
    /// oracle; capped at [`Ac3Admission::MAX_SESSIONS`] sessions.
    Exact,
    /// The incremental class-aggregated test ([`Ac3Fast`]) — unbounded
    /// session count, decision cost independent of residency.
    #[default]
    Fast,
}

impl std::str::FromStr for Ac3Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(Ac3Backend::Exact),
            "fast" => Ok(Ac3Backend::Fast),
            other => Err(format!("unknown AC3 backend {other:?} (want exact|fast)")),
        }
    }
}

/// Rejections from [`Ac3Service`], tagged by backend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ac3ServiceError {
    /// The exact enumerator rejected.
    Exact(Ac3Error),
    /// The fast service rejected.
    Fast(Ac3FastError),
}

impl std::fmt::Display for Ac3ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ac3ServiceError::Exact(e) => write!(f, "{e}"),
            Ac3ServiceError::Fast(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Ac3ServiceError {}

/// Backend-agnostic procedure-3 admission with uniform teardown handles.
///
/// Both backends answer the same feasibility question (the differential
/// suite pins them to each other); this wrapper lets call-setup code —
/// `lit-repro`'s scenario establishment, the storm benchmark — switch
/// between them with a flag. Handles stay valid across arbitrary churn:
/// the exact backend's index motion under `swap_remove` is tracked
/// internally.
#[derive(Clone, Debug)]
pub struct Ac3Service {
    inner: ServiceInner,
}

#[derive(Clone, Debug)]
enum ServiceInner {
    Exact {
        ac: Ac3Admission,
        /// Handle id → current session index. BTreeMap, not HashMap:
        /// the engine crates ban hash collections (nondeterministic
        /// iteration order would leak into any future drain/debug path),
        /// and handle churn is tiny next to the AC3 recompute itself.
        index_of: std::collections::BTreeMap<u64, usize>,
        /// Current session index → handle id (admission-order mirror).
        handle_at: Vec<u64>,
        next_id: u64,
    },
    Fast(Ac3Fast),
}

/// A teardown handle from [`Ac3Service::try_admit`]. Single-use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ac3ServiceHandle(u64);

impl Ac3Service {
    /// Admission state for a link of capacity `C` bit/s.
    pub fn new(backend: Ac3Backend, link_bps: u64) -> Self {
        let inner = match backend {
            Ac3Backend::Exact => ServiceInner::Exact {
                ac: Ac3Admission::new(link_bps),
                index_of: std::collections::BTreeMap::new(),
                handle_at: Vec::new(),
                next_id: 0,
            },
            Ac3Backend::Fast => ServiceInner::Fast(Ac3Fast::new(link_bps)),
        };
        Ac3Service { inner }
    }

    /// Which backend this service runs.
    pub fn backend(&self) -> Ac3Backend {
        match &self.inner {
            ServiceInner::Exact { .. } => Ac3Backend::Exact,
            ServiceInner::Fast(_) => Ac3Backend::Fast,
        }
    }

    /// Number of admitted sessions.
    pub fn len(&self) -> usize {
        match &self.inner {
            ServiceInner::Exact { ac, .. } => ac.len(),
            ServiceInner::Fast(ac) => ac.len() as usize,
        }
    }

    /// Whether no session is admitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total reserved rate.
    pub fn admitted_rate_bps(&self) -> u64 {
        match &self.inner {
            ServiceInner::Exact { ac, .. } => ac.admitted_rate_bps(),
            ServiceInner::Fast(ac) => ac.admitted_rate_bps(),
        }
    }

    /// Try to admit a session; on success returns a teardown handle and
    /// the granted (fixed) delay assignment.
    pub fn try_admit(
        &mut self,
        rate_bps: u64,
        max_len_bits: u32,
        d: Duration,
    ) -> Result<(Ac3ServiceHandle, DelayAssignment), Ac3ServiceError> {
        match &mut self.inner {
            ServiceInner::Exact {
                ac,
                index_of,
                handle_at,
                next_id,
            } => {
                let granted = ac
                    .try_admit(rate_bps, max_len_bits, d)
                    .map_err(Ac3ServiceError::Exact)?;
                let id = *next_id;
                *next_id += 1;
                index_of.insert(id, handle_at.len());
                handle_at.push(id);
                Ok((Ac3ServiceHandle(id), granted))
            }
            ServiceInner::Fast(ac) => {
                let (h, granted) = ac
                    .try_admit(rate_bps, max_len_bits, d)
                    .map_err(Ac3ServiceError::Fast)?;
                Ok((Ac3ServiceHandle(h.to_bits()), granted))
            }
        }
    }

    /// Tear down a previously admitted session. `false` if the handle is
    /// stale or unknown (state unchanged).
    pub fn release(&mut self, handle: Ac3ServiceHandle) -> bool {
        match &mut self.inner {
            ServiceInner::Exact {
                ac,
                index_of,
                handle_at,
                ..
            } => {
                let Some(index) = index_of.remove(&handle.0) else {
                    return false;
                };
                let released = ac.release(index);
                debug_assert!(released, "service index desynced from Ac3Admission");
                // Mirror the enumerator's swap_remove in the handle maps.
                let moved = handle_at.swap_remove(index);
                if index < handle_at.len() {
                    debug_assert_eq!(moved, handle.0);
                    let resident = handle_at[index];
                    index_of.insert(resident, index);
                }
                released
            }
            ServiceInner::Fast(ac) => ac.release(Ac3Handle::from_bits(handle.0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example server: C = 100 Mbit/s, three classes
    /// (10 Mbit/s, 0.2 ms), (40 Mbit/s, 1.6 ms), (100 Mbit/s, 4 ms).
    fn example_classes() -> Vec<DelayClass> {
        vec![
            DelayClass {
                max_bandwidth_bps: 10_000_000,
                base_delay: Duration::from_us(200),
            },
            DelayClass {
                max_bandwidth_bps: 40_000_000,
                base_delay: Duration::from_us(1_600),
            },
            DelayClass {
                max_bandwidth_bps: 100_000_000,
                base_delay: Duration::from_ms(4),
            },
        ]
    }

    fn d_of(a: &DelayAssignment, len: u32, rate: u64) -> Duration {
        a.d_for(len, rate)
    }

    #[test]
    fn paper_worked_example_ac1() {
        // 100 kbit/s session, 400-bit packets ⇒ d = 0.4, 1.8, 5.6 ms in
        // classes 1, 2, 3 (rule 1.3a).
        let mut ac =
            ClassedAdmission::new(Procedure::Proc1, 100_000_000, example_classes()).unwrap();
        let req = SessionRequest::new(100_000, 400);
        for (class, want_us) in [(0usize, 400u64), (1, 1_800), (2, 5_600)] {
            let a = ac.d_assignment(class, &req, DRule::PerSessionMax);
            assert_eq!(
                d_of(&a, 400, 100_000),
                Duration::from_us(want_us),
                "class {class}"
            );
        }
        // And an actual admission into class 1 succeeds.
        let a = ac.try_admit(0, &req, DRule::PerSessionMax).unwrap();
        assert_eq!(d_of(&a, 400, 100_000), Duration::from_us(400));
    }

    #[test]
    fn paper_worked_example_ac2() {
        // Same setup under procedure 2 ⇒ d = 0.2, 2.0, 5.6 ms.
        let ac = ClassedAdmission::new(Procedure::Proc2, 100_000_000, example_classes()).unwrap();
        let req = SessionRequest::new(100_000, 400);
        for (class, want_us) in [(0usize, 200u64), (1, 2_000), (2, 5_600)] {
            let a = ac.d_assignment(class, &req, DRule::PerSessionMax);
            assert_eq!(
                d_of(&a, 400, 100_000),
                Duration::from_us(want_us),
                "class {class}"
            );
        }
    }

    #[test]
    fn paper_low_rate_session_comparison() {
        // 10 kbit/s session: class 1 gives d = 4 ms under AC1 but 0.2 ms
        // under AC2 — the paper's headline difference.
        let req = SessionRequest::new(10_000, 400);
        let ac1 = ClassedAdmission::new(Procedure::Proc1, 100_000_000, example_classes()).unwrap();
        let ac2 = ClassedAdmission::new(Procedure::Proc2, 100_000_000, example_classes()).unwrap();
        let d1 = d_of(
            &ac1.d_assignment(0, &req, DRule::PerSessionMax),
            400,
            10_000,
        );
        let d2 = d_of(
            &ac2.d_assignment(0, &req, DRule::PerSessionMax),
            400,
            10_000,
        );
        assert_eq!(d1, Duration::from_ms(4));
        assert_eq!(d2, Duration::from_us(200));
    }

    #[test]
    fn one_class_gives_len_over_rate() {
        // AC1 with one class and ε = 0: d = L·C/(r·C) = L/r, the
        // VirtualClock special case.
        let mut ac = ClassedAdmission::one_class(1_536_000);
        let req = SessionRequest::new(32_000, 424);
        let a = ac.try_admit(0, &req, DRule::PerPacket).unwrap();
        assert_eq!(d_of(&a, 424, 32_000), Duration::from_us(13_250));
    }

    #[test]
    fn test_1_1_rejects_overbooked_class() {
        let mut ac =
            ClassedAdmission::new(Procedure::Proc1, 100_000_000, example_classes()).unwrap();
        // Class 1 holds at most 10 Mbit/s.
        let big = SessionRequest::new(6_000_000, 400);
        ac.try_admit(0, &big, DRule::PerSessionMax).unwrap();
        let err = ac.try_admit(0, &big, DRule::PerSessionMax).unwrap_err();
        assert!(
            matches!(err, AdmissionError::BandwidthExceeded { class: 0, .. }),
            "{err}"
        );
        // But the same session fits in class 2.
        ac.try_admit(1, &big, DRule::PerSessionMax).unwrap();
    }

    #[test]
    fn test_1_1_checks_higher_classes_too() {
        // Filling class 3 to the brim blocks class-1 admissions via the
        // m = 3 test even if class 1 itself has room.
        let mut ac =
            ClassedAdmission::new(Procedure::Proc1, 100_000_000, example_classes()).unwrap();
        ac.try_admit(
            2,
            &SessionRequest::new(100_000_000, 400),
            DRule::PerSessionMax,
        )
        .unwrap();
        let err = ac
            .try_admit(0, &SessionRequest::new(1, 400), DRule::PerSessionMax)
            .unwrap_err();
        assert!(matches!(
            err,
            AdmissionError::BandwidthExceeded { class: 2, .. }
        ));
    }

    #[test]
    fn test_1_2_rejects_when_sigma_too_small() {
        // σ_1 = 0.2 ms at C = 100 Mbit/s allows Σ L ≤ 20 000 bits in
        // class 1 (0.2 ms · 100 Mbit/s).
        let mut ac =
            ClassedAdmission::new(Procedure::Proc1, 100_000_000, example_classes()).unwrap();
        for _ in 0..50 {
            ac.try_admit(0, &SessionRequest::new(1_000, 400), DRule::PerSessionMax)
                .unwrap();
        }
        // 50 × 400 = 20 000 bits: full. One more fails test (1.2).
        let err = ac
            .try_admit(0, &SessionRequest::new(1_000, 400), DRule::PerSessionMax)
            .unwrap_err();
        assert!(
            matches!(err, AdmissionError::BaseDelayExceeded { class: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn proc1_ignores_sigma_p_but_proc2_enforces_it() {
        // One class with a tiny σ: AC1 never checks σ_P, AC2 does.
        let classes = vec![DelayClass {
            max_bandwidth_bps: 1_536_000,
            base_delay: Duration::from_ps(1),
        }];
        let req = SessionRequest::new(32_000, 424);
        let mut ac1 = ClassedAdmission::new(Procedure::Proc1, 1_536_000, classes.clone()).unwrap();
        assert!(ac1.try_admit(0, &req, DRule::PerPacket).is_ok());
        let mut ac2 = ClassedAdmission::new(Procedure::Proc2, 1_536_000, classes).unwrap();
        let err = ac2.try_admit(0, &req, DRule::PerPacket).unwrap_err();
        assert!(matches!(err, AdmissionError::BaseDelayExceeded { .. }));
    }

    #[test]
    fn release_returns_resources() {
        let mut ac =
            ClassedAdmission::new(Procedure::Proc1, 100_000_000, example_classes()).unwrap();
        let req = SessionRequest::new(10_000_000, 400);
        ac.try_admit(0, &req, DRule::PerSessionMax).unwrap();
        assert!(ac.try_admit(0, &req, DRule::PerSessionMax).is_err());
        ac.release(0, &req);
        assert!(ac.try_admit(0, &req, DRule::PerSessionMax).is_ok());
        assert_eq!(ac.admitted_rate_bps(), 10_000_000);
    }

    #[test]
    fn epsilon_adds_to_d() {
        let ac = ClassedAdmission::one_class(1_536_000);
        let mut req = SessionRequest::new(32_000, 424);
        req.epsilon = Duration::from_us(100);
        let a = ac.d_assignment(0, &req, DRule::PerSessionMax);
        assert_eq!(d_of(&a, 424, 32_000), Duration::from_us(13_350));
    }

    #[test]
    fn config_validation() {
        assert_eq!(
            ClassedAdmission::new(Procedure::Proc1, 1000, vec![]).unwrap_err(),
            ConfigError::NoClasses
        );
        let c = |bw, us| DelayClass {
            max_bandwidth_bps: bw,
            base_delay: Duration::from_us(us),
        };
        assert_eq!(
            ClassedAdmission::new(Procedure::Proc1, 1000, vec![c(500, 10), c(400, 20)])
                .unwrap_err(),
            ConfigError::BandwidthNotMonotone
        );
        assert_eq!(
            ClassedAdmission::new(Procedure::Proc1, 1000, vec![c(500, 20), c(1000, 10)])
                .unwrap_err(),
            ConfigError::BaseDelayNotMonotone
        );
        assert_eq!(
            ClassedAdmission::new(Procedure::Proc1, 1000, vec![c(500, 10)]).unwrap_err(),
            ConfigError::LastClassNotFullLink
        );
    }

    // ---- Procedure 3 ----

    #[test]
    fn ac3_accepts_d_equal_len_over_rate_up_to_capacity() {
        // d_s = L/r for every session is always feasible (it is the
        // one-class AC1 assignment): fill the link completely.
        // r = 64 kbit/s makes L/r = 6.625 ms exact in picoseconds, so the
        // full-set test sits exactly at equality and must pass.
        let mut ac = Ac3Admission::new(640_000);
        for _ in 0..10 {
            ac.try_admit(64_000, 424, Duration::from_bits_at_rate(424, 64_000))
                .unwrap();
        }
        assert_eq!(ac.admitted_rate_bps(), 640_000);
    }

    #[test]
    fn ac3_rejects_rate_overbooking() {
        let mut ac = Ac3Admission::new(1_536_000);
        ac.try_admit(1_000_000, 424, Duration::from_ms(10)).unwrap();
        assert_eq!(
            ac.try_admit(600_000, 424, Duration::from_ms(10))
                .unwrap_err(),
            Ac3Error::RateExceeded
        );
    }

    #[test]
    fn ac3_singleton_test_bounds_minimum_d() {
        // Singleton A = {s}: C ≥ L·r/(r·d) = L/d ⇒ d ≥ L/C.
        let mut ac = Ac3Admission::new(1_536_000);
        let just_under = Duration::from_ps(LinkParams_lmax_ps() - 1);
        assert!(matches!(
            ac.try_admit(32_000, 424, just_under).unwrap_err(),
            Ac3Error::SubsetInfeasible { mask: 0 }
        ));
        let at_limit = Duration::from_ps(LinkParams_lmax_ps());
        assert!(ac.try_admit(32_000, 424, at_limit).is_ok());
    }

    /// 424 bits / 1536 kbit/s in ps, rounded as `from_bits_at_rate` does.
    #[allow(non_snake_case)]
    fn LinkParams_lmax_ps() -> u64 {
        Duration::from_bits_at_rate(424, 1_536_000).as_ps()
    }

    #[test]
    fn ac3_aggressive_d_strands_bandwidth() {
        // The paper: procedure 3 "may lead to incomplete usage of
        // bandwidth". Give one session a very small d; a second session
        // at the complementary rate is then rejected by a pair subset even
        // though Σ r ≤ C.
        let mut ac = Ac3Admission::new(1_536_000);
        // d barely above L/C for a 768 kbit/s session.
        ac.try_admit(768_000, 424, Duration::from_us(300)).unwrap();
        let err = ac
            .try_admit(768_000, 424, Duration::from_us(300))
            .unwrap_err();
        assert!(
            matches!(err, Ac3Error::SubsetInfeasible { .. }),
            "expected subset infeasibility, got {err:?}"
        );
        // With a generous d the pair passes: 2L/C ≤ (r1·d1 + r2·d2)/C...
        assert!(ac.try_admit(768_000, 424, Duration::from_ms(20)).is_ok());
    }

    #[test]
    fn ac3_equivalent_to_proc2_one_class_with_common_d() {
        // Paper: AC2 with P = 1 and ε = 0 is equivalent to AC3 when all
        // sessions share the same constant d = σ_1.
        let c = 1_536_000u64;
        let sigma = Duration::from_us(1_500);
        let classes = vec![DelayClass {
            max_bandwidth_bps: c,
            base_delay: sigma,
        }];
        let mut ac2 = ClassedAdmission::new(Procedure::Proc2, c, classes).unwrap();
        let mut ac3 = Ac3Admission::new(c);
        // Keep admitting identical sessions until one of them rejects;
        // they must reject at the same point.
        let mut n2 = 0;
        let mut n3 = 0;
        for _ in 0..40 {
            // Under AC2, rule (2.3) with R_0 = 0 gives d = σ_1 exactly.
            let req = SessionRequest::new(100_000, 424);
            if ac2.try_admit(0, &req, DRule::PerSessionMax).is_ok() {
                n2 += 1;
            }
            if ac3.try_admit(100_000, 424, sigma).is_ok() {
                n3 += 1;
            }
        }
        assert_eq!(n2, n3);
        assert!(n2 > 0);
    }

    #[test]
    fn ac3_zero_params_rejected() {
        let mut ac = Ac3Admission::new(1000);
        assert_eq!(
            ac.try_admit(0, 424, Duration::from_ms(1)).unwrap_err(),
            Ac3Error::ZeroParameter
        );
        assert_eq!(
            ac.try_admit(100, 424, Duration::ZERO).unwrap_err(),
            Ac3Error::ZeroParameter
        );
    }

    #[test]
    fn ac3_release_restores_feasibility_and_rate() {
        // Admit a session whose aggressive d strands the rest of the
        // link; a second identical request must fail, succeed again after
        // release, and the cached rate sum must track exactly.
        let mut ac = Ac3Admission::new(1_536_000);
        ac.try_admit(768_000, 424, Duration::from_us(300)).unwrap();
        assert_eq!(ac.admitted_rate_bps(), 768_000);
        assert!(ac.try_admit(768_000, 424, Duration::from_us(300)).is_err());
        assert!(ac.release(0));
        assert_eq!(ac.admitted_rate_bps(), 0);
        assert!(ac.is_empty());
        assert!(ac.try_admit(768_000, 424, Duration::from_us(300)).is_ok());
        assert_eq!(ac.admitted_rate_bps(), 768_000);
        // Out-of-range release is a no-op.
        assert!(!ac.release(5));
        assert_eq!(ac.len(), 1);
    }

    #[test]
    fn ac3_release_swap_remove_keeps_rate_consistent() {
        let mut ac = Ac3Admission::new(1_000_000);
        let d = Duration::from_ms(50);
        ac.try_admit(100_000, 424, d).unwrap();
        ac.try_admit(200_000, 424, d).unwrap();
        ac.try_admit(300_000, 424, d).unwrap();
        // Releasing the middle session swaps the last into its place.
        assert!(ac.release(1));
        assert_eq!(ac.admitted_rate_bps(), 400_000);
        assert!(ac.release(1)); // the former index-2 session
        assert_eq!(ac.admitted_rate_bps(), 100_000);
        assert!(ac.release(0));
        assert_eq!(ac.admitted_rate_bps(), 0);
    }

    #[test]
    fn ac3_rate_overflow_rejected_not_wrapped() {
        // Regression: `admitted + rate` used to be an unchecked u64 add,
        // so a near-MAX request wrapped past the capacity test. L = 1 bit
        // and d = 1 ps keep the subset products inside u128.
        let mut ac = Ac3Admission::new(u64::MAX);
        ac.try_admit(u64::MAX - 1, 1, Duration::from_ps(1)).unwrap();
        assert_eq!(
            ac.try_admit(u64::MAX - 1, 1, Duration::from_ps(1))
                .unwrap_err(),
            Ac3Error::RateExceeded
        );
        assert_eq!(ac.admitted_rate_bps(), u64::MAX - 1);
        assert_eq!(ac.len(), 1);
    }

    // ---- Ac3Service (backend selection + uniform handles) ----

    #[test]
    fn service_backends_agree_on_simple_churn() {
        let mk = |b| Ac3Service::new(b, 1_536_000);
        for backend in [Ac3Backend::Exact, Ac3Backend::Fast] {
            let mut svc = mk(backend);
            assert_eq!(svc.backend(), backend);
            let d = Duration::from_ms(20);
            let (h1, a1) = svc.try_admit(500_000, 424, d).unwrap();
            assert_eq!(a1, DelayAssignment::Fixed(d));
            let (h2, _) = svc.try_admit(400_000, 424, d).unwrap();
            let (h3, _) = svc.try_admit(300_000, 424, d).unwrap();
            assert_eq!(svc.admitted_rate_bps(), 1_200_000, "{backend:?}");
            // Release out of order; handles must stay valid.
            assert!(svc.release(h2));
            assert_eq!(svc.admitted_rate_bps(), 800_000, "{backend:?}");
            assert!(svc.release(h1));
            assert!(!svc.release(h1), "double release on {backend:?}");
            assert!(svc.release(h3));
            assert!(svc.is_empty(), "{backend:?}");
        }
    }

    #[test]
    fn backend_parses_from_str() {
        assert_eq!("exact".parse::<Ac3Backend>().unwrap(), Ac3Backend::Exact);
        assert_eq!("fast".parse::<Ac3Backend>().unwrap(), Ac3Backend::Fast);
        assert!("pgps".parse::<Ac3Backend>().is_err());
        assert_eq!(Ac3Backend::default(), Ac3Backend::Fast);
    }
}
