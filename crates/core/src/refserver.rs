//! The reference server (paper §2, Figure 1, eq. 1).
//!
//! A session's *reference server* is a work-conserving FCFS server of rate
//! `r_s` serving that session **alone**. Every service commitment of
//! Leave-in-Time is expressed relative to it: the scheduler guarantees
//! end-to-end service "no worse than" the reference server plus a constant.
//!
//! Finishing times obey the recursion
//!
//! ```text
//! W_{i,s} = max{ t_{i,s}, W_{i-1,s} } + L_{i,s}/r_s,   W_{0,s} = t_{1,s}
//! ```
//!
//! which is also the skeleton of VirtualClock's deadline update (eq. 2) and
//! of the `K` clock in Leave-in-Time's final form (eq. 11).

use lit_sim::{Duration, Time};

/// Incremental evaluator of eq. (1).
#[derive(Clone, Debug)]
pub struct ReferenceServer {
    rate_bps: u64,
    /// `W_{i-1}`; `None` before the first packet (then `W_0 = t_1`).
    w_prev: Option<Time>,
}

/// Outcome of offering one packet to the reference server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RefOutcome {
    /// Finishing transmission time `W_i`.
    pub finish: Time,
    /// Delay in the reference server, `D^ref_i = W_i − t_i`.
    pub delay: Duration,
}

impl ReferenceServer {
    /// A reference server with rate `r_s`.
    ///
    /// # Panics
    /// Panics if the rate is zero.
    pub fn new(rate_bps: u64) -> Self {
        assert!(rate_bps > 0, "ReferenceServer: zero rate");
        ReferenceServer {
            rate_bps,
            w_prev: None,
        }
    }

    /// The configured rate.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Offer packet `i` arriving (last bit) at `t` with length `len_bits`.
    /// Arrivals must be fed in packet order; `t` may not precede the
    /// previous arrival is *not* required (eq. 1 only needs the max), but
    /// feeding order defines the packet numbering.
    pub fn offer(&mut self, t: Time, len_bits: u32) -> RefOutcome {
        let service = Duration::from_bits_at_rate(len_bits as u64, self.rate_bps);
        let start = match self.w_prev {
            Some(w) => t.max(w),
            None => t, // W_0 = t_1
        };
        let finish = start + service;
        self.w_prev = Some(finish);
        RefOutcome {
            finish,
            delay: finish - t,
        }
    }

    /// Upper bound on reference-server delay for a session conforming to a
    /// token bucket `(r_s, b₀)`: `D^ref_max = b₀ / r_s` (eq. 14).
    pub fn token_bucket_delay_bound(rate_bps: u64, depth_bits: u64) -> Duration {
        Duration::from_bits_at_rate(depth_bits, rate_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spaced_arrivals_see_pure_service_time() {
        let mut rs = ReferenceServer::new(32_000);
        // 424-bit packets every 20 ms: service 13.25 ms < spacing, so each
        // packet's delay is exactly the service time.
        for i in 0..10u64 {
            let out = rs.offer(Time::from_ms(20 * i), 424);
            assert_eq!(out.delay, Duration::from_us(13_250), "packet {i}");
        }
    }

    #[test]
    fn back_to_back_burst_queues_linearly() {
        let mut rs = ReferenceServer::new(32_000);
        // 4 packets all arriving at t = 0: delays L/r, 2L/r, 3L/r, 4L/r.
        for i in 1..=4u64 {
            let out = rs.offer(Time::ZERO, 424);
            assert_eq!(out.delay, Duration::from_us(13_250) * i, "packet {i}");
        }
    }

    #[test]
    fn idle_period_resets_the_clock() {
        let mut rs = ReferenceServer::new(32_000);
        rs.offer(Time::ZERO, 424);
        rs.offer(Time::ZERO, 424); // backlog until 26.5 ms
                                   // Long idle gap: next packet starts fresh.
        let out = rs.offer(Time::from_secs(1), 424);
        assert_eq!(out.delay, Duration::from_us(13_250));
    }

    #[test]
    fn token_bucket_bound_is_b0_over_r() {
        assert_eq!(
            ReferenceServer::token_bucket_delay_bound(32_000, 424),
            Duration::from_us(13_250)
        );
        assert_eq!(
            ReferenceServer::token_bucket_delay_bound(100_000, 1_000_000),
            Duration::from_secs(10)
        );
    }

    #[test]
    fn token_bucket_traffic_never_exceeds_b0_over_r() {
        // Empirical check of eq. (14): shape an adversarial burst source
        // through a (r, b0) bucket and feed it to the reference server.
        use lit_sim::SimRng;
        use lit_traffic::{BurstSource, ShapedSource, Source};
        let (r, b0) = (50_000u64, 2_120u64); // 5 packets deep
        let mut src = ShapedSource::new(BurstSource::new(Duration::from_ms(30), 8, 424), r, b0);
        let mut rng = SimRng::seed_from(9);
        let mut rs = ReferenceServer::new(r);
        let bound = ReferenceServer::token_bucket_delay_bound(r, b0);
        for _ in 0..5_000 {
            let e = src.next_emission(&mut rng).unwrap();
            let out = rs.offer(e.at, e.len_bits);
            assert!(
                out.delay <= bound,
                "delay {} exceeds b0/r {}",
                out.delay,
                bound
            );
        }
    }
}
