//! The process-global collection point for probe output.
//!
//! Experiment runners spawn one network per replica, possibly across
//! worker threads in arbitrary completion order. Each network's
//! [`ObsProbe`] submits its shard and trace ring here at `finish`;
//! export then merges shards commutatively and sorts trace rings by
//! `(network master seed, content hash)`, so the exported bytes are
//! identical for any `--threads` value. That invariant is what the
//! thread-determinism snapshot test pins.
//!
//! The hub is disabled by default: [`global_probe`] returns `None` and
//! the executor's hook sites stay a single always-false branch.

use crate::metrics::ObsShard;
use crate::probe::{ObsProbe, Probe};
use crate::trace::{self, TraceEvent, TraceRing};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

const METRICS_ON: u8 = 1;
const TRACE_ON: u8 = 2;

/// Default per-network trace-ring tail capacity when tracing is enabled.
/// Sized so the ring's working set (~72 B/slot, ~36 KiB total) stays
/// close to L1: the tracer cycles through every slot continuously, and a
/// larger ring turns each record into a cache-line miss — that is what
/// the CI overhead guard's ≤ 10% probes-on budget polices. Raise via
/// [`set_trace_cap`] when a deeper tail matters more than hot-path cost.
pub const DEFAULT_TRACE_CAP: usize = 512;

static FLAGS: AtomicU8 = AtomicU8::new(0);
static TRACE_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_TRACE_CAP);

#[derive(Default)]
struct Hub {
    shard: ObsShard,
    rings: Vec<(u64, TraceRing)>,
}

fn hub() -> &'static Mutex<Hub> {
    static HUB: OnceLock<Mutex<Hub>> = OnceLock::new();
    HUB.get_or_init(Mutex::default)
}

fn lock() -> std::sync::MutexGuard<'static, Hub> {
    // A poisoned hub only means a worker panicked mid-submit; the
    // observations themselves are still mergeable.
    hub().lock().unwrap_or_else(|e| e.into_inner())
}

/// Turn global collection on or off. `metrics` enables the registry,
/// `trace` the lifecycle tracer (implies metrics storage exists but the
/// ring stays empty when off). Does not clear prior submissions — call
/// [`reset`] for that.
pub fn set_global(metrics: bool, trace: bool) {
    let mut f = 0;
    if metrics {
        f |= METRICS_ON;
    }
    if trace {
        f |= TRACE_ON;
    }
    FLAGS.store(f, Ordering::SeqCst);
}

/// Override the per-network trace-ring tail capacity (tests use small
/// rings; `DEFAULT_TRACE_CAP` otherwise).
pub fn set_trace_cap(cap: usize) {
    TRACE_CAP.store(cap.max(1), Ordering::SeqCst);
}

/// Whether any collection is on.
pub fn enabled() -> bool {
    FLAGS.load(Ordering::SeqCst) != 0
}

/// The probe a network should install, or `None` when collection is off
/// (the executor then pays one branch per hook site and nothing more).
pub fn global_probe() -> Option<Box<dyn Probe>> {
    let f = FLAGS.load(Ordering::SeqCst);
    if f == 0 {
        return None;
    }
    let cap = if f & TRACE_ON != 0 {
        TRACE_CAP.load(Ordering::SeqCst)
    } else {
        0
    };
    Some(Box::new(ObsProbe::new(cap).submitting()))
}

/// Deliver one network's observations. Called by [`Probe::finish`] on a
/// submitting [`ObsProbe`];
/// order across threads is irrelevant by construction.
pub fn submit(shard: ObsShard, ring: TraceRing, seed: u64) {
    let mut h = lock();
    h.shard.merge(&shard);
    if ring.total() > 0 && ring.enabled() {
        h.rings.push((seed, ring));
    }
}

/// Discard everything collected so far (flags are left as set).
pub fn reset() {
    let mut h = lock();
    h.shard = ObsShard::default();
    h.rings.clear();
}

/// The pooled metrics as deterministic JSON.
pub fn metrics_json() -> String {
    lock().shard.to_json()
}

/// A clone of the pooled metrics shard (for in-process assertions).
pub fn metrics_shard() -> ObsShard {
    lock().shard.clone()
}

/// FNV-1a over an event's identifying fields — a content fingerprint
/// used only to order rings deterministically when seeds collide (equal
/// seed ⇒ identical replica ⇒ identical hash ⇒ order irrelevant).
fn ring_hash(events: &[TraceEvent]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for e in events {
        mix(e.t_ps);
        mix(u64::from(e.session));
        mix(e.seq);
        mix(u64::from(e.node));
        mix(e.aux_ps as u64);
    }
    h
}

fn sorted_groups() -> Vec<(u64, Vec<TraceEvent>)> {
    let h = lock();
    let mut groups: Vec<(u64, Vec<TraceEvent>)> = h
        .rings
        .iter()
        .map(|(seed, ring)| (*seed, ring.events()))
        .collect();
    drop(h);
    groups.sort_by_key(|(seed, events)| (*seed, ring_hash(events)));
    groups
}

/// The pooled trace as Chrome `trace_event` JSON, rings ordered by
/// `(seed, content hash)` so the bytes are thread-count independent.
pub fn chrome_trace_json() -> String {
    trace::chrome_trace_json(&sorted_groups())
}

/// The pooled trace as JSONL, one `{"seed":…, …}` object per event, in
/// the same deterministic ring order as [`chrome_trace_json`].
pub fn trace_jsonl() -> String {
    let groups = sorted_groups();
    let mut out = String::new();
    for (seed, events) in &groups {
        for e in events {
            let line = trace::jsonl_line(e);
            out.push_str(&format!("{{\"seed\":{seed},{}\n", &line[1..]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::PacketView;
    use lit_sim::Time;

    fn run_one(seed: u64, arrivals: u64) {
        let mut p = match global_probe() {
            Some(p) => p,
            None => return,
        };
        p.on_build(seed, 1, &[1]);
        for i in 0..arrivals {
            p.on_arrive(
                Time::from_us(i),
                0,
                PacketView {
                    session: 0,
                    seq: i + 1,
                    hop: 0,
                    len_bits: 424,
                    created: Time::ZERO,
                    arrived: Time::from_us(i),
                },
                0,
                1,
            );
        }
        p.finish(Time::from_us(arrivals));
    }

    #[test]
    fn pooled_export_is_submission_order_independent() {
        // Serialise against other tests in this binary that touch the
        // global hub (Rust runs tests in one process).
        set_global(true, true);
        set_trace_cap(64);

        reset();
        run_one(3, 2);
        run_one(1, 5);
        let a_metrics = metrics_json();
        let a_trace = chrome_trace_json();
        let a_jsonl = trace_jsonl();

        reset();
        run_one(1, 5);
        run_one(3, 2);
        assert_eq!(metrics_json(), a_metrics);
        assert_eq!(chrome_trace_json(), a_trace);
        assert_eq!(trace_jsonl(), a_jsonl);

        let shard = metrics_shard();
        assert_eq!(shard.networks, 2);
        assert_eq!(shard.nodes[0].arrivals, 7);

        set_global(false, false);
        reset();
        assert!(global_probe().is_none());
        assert!(!enabled());
    }
}
