//! The packet-lifecycle tracer: a bounded ring of [`TraceEvent`]s and
//! the Chrome `trace_event` / JSONL exporters.
//!
//! The ring keeps the *exact* first `head` events plus the last `cap`
//! events — enough to snapshot a run's opening (connection setup, first
//! regulator holds) and its steady state without unbounded memory. The
//! two regions never overlap in the export: a head event is emitted only
//! if its index precedes the tail's oldest retained index.
//!
//! Chrome export follows the `trace_event` JSON-object format the
//! `chrome://tracing` / Perfetto legacy importer reads: a top-level
//! `{"traceEvents": [...]}` whose entries carry `name`, `ph`, `ts`
//! (microseconds), `pid`, `tid`. Per-hop residency (node arrival →
//! departure) is a complete `"X"` span on the node's `tid`; arrivals,
//! eligibility releases, dispatches and oracle violations are instants
//! (`"i"`).

use std::fmt::Write as _;

/// The lifecycle stage a trace event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Last bit arrived at a node.
    Arrive,
    /// A regulator released a held packet (`E > arrival` only; packets
    /// eligible on arrival emit no separate event).
    Eligible,
    /// Service started (the packet won the eligible queue).
    Dispatch,
    /// Last bit left the node (`aux_ps` = deadline slack; `delivered`
    /// marks the final hop).
    Depart,
    /// The packet was discarded. The lossless executor never emits this
    /// today; the kind is part of the schema for finite-buffer variants.
    Drop,
    /// The conformance oracle recorded a violation (`tag` names the
    /// violated inequality).
    Violation,
}

impl TraceKind {
    /// The compact name used in JSONL and Chrome `name` fields.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Arrive => "arrive",
            TraceKind::Eligible => "eligible",
            TraceKind::Dispatch => "dispatch",
            TraceKind::Depart => "depart",
            TraceKind::Drop => "drop",
            TraceKind::Violation => "violation",
        }
    }
}

/// One recorded lifecycle event. `Copy` and fixed-size so ring recording
/// is a bounded store with no allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Lifecycle stage.
    pub kind: TraceKind,
    /// Simulation time, picoseconds.
    pub t_ps: u64,
    /// Session id (`u32::MAX` when not applicable).
    pub session: u32,
    /// Per-session packet sequence number (0 when not applicable).
    pub seq: u64,
    /// Node id (`u32::MAX` for session-level violations).
    pub node: u32,
    /// Hop index along the session's route.
    pub hop: u32,
    /// Packet length, bits.
    pub len_bits: u32,
    /// Kind-specific payload, picoseconds: holding time `E − arrival`
    /// for [`TraceKind::Eligible`], deadline slack `F − departure`
    /// (negative = late) for [`TraceKind::Depart`], 0 otherwise.
    pub aux_ps: i64,
    /// For [`TraceKind::Depart`]: node arrival time (the span start of
    /// the Chrome `"X"` event). 0 otherwise.
    pub start_ps: u64,
    /// For [`TraceKind::Depart`]: whether this was the final hop.
    pub delivered: bool,
    /// For [`TraceKind::Violation`]: the violated inequality. Empty
    /// otherwise.
    pub tag: &'static str,
}

/// Bounded event storage: the exact first `head_cap` events plus the
/// last `tail_cap`, with a total count so the dropped span is known.
///
/// The tail is a flat circular buffer (one indexed store per record once
/// full, no deque machinery) — `record` is on the simulator's hot path
/// and the CI overhead guard holds the tracing run to ≤ 10% over the
/// probe-free run.
#[derive(Clone, Debug, Default)]
pub struct TraceRing {
    head: Vec<TraceEvent>,
    tail: Vec<TraceEvent>,
    /// Oldest tail slot (next to overwrite) once the tail is full.
    cursor: usize,
    head_cap: usize,
    tail_cap: usize,
    total: u64,
}

impl TraceRing {
    /// A ring keeping the first `head_cap` and last `tail_cap` events.
    /// `tail_cap == 0` disables recording entirely (only the total event
    /// count is kept).
    pub fn new(head_cap: usize, tail_cap: usize) -> Self {
        TraceRing {
            head: Vec::new(),
            tail: Vec::new(),
            cursor: 0,
            head_cap,
            tail_cap,
            total: 0,
        }
    }

    /// Whether recording is enabled (a zero-capacity ring stores nothing).
    pub fn enabled(&self) -> bool {
        self.tail_cap > 0
    }

    /// Record one event.
    #[inline(always)]
    pub fn record(&mut self, e: TraceEvent) {
        self.total += 1;
        if self.tail_cap == 0 {
            return;
        }
        if self.head.len() < self.head_cap {
            self.head.push(e);
        }
        if self.tail.len() < self.tail_cap {
            self.tail.push(e);
        } else {
            self.tail[self.cursor] = e;
            self.cursor += 1;
            if self.cursor == self.tail_cap {
                self.cursor = 0;
            }
        }
    }

    /// Total events observed (recorded or not).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events observed but retained in neither head nor tail.
    pub fn dropped(&self) -> u64 {
        let tail_first = self.total - self.tail.len() as u64;
        tail_first.saturating_sub(self.head.len() as u64)
    }

    /// All retained events in time order, head gap excluded exactly: a
    /// head event appears only if its index precedes the tail's oldest.
    pub fn events(&self) -> Vec<TraceEvent> {
        let tail_first = self.total - self.tail.len() as u64;
        let mut out: Vec<TraceEvent> = self
            .head
            .iter()
            .take(tail_first.min(self.head.len() as u64) as usize)
            .copied()
            .collect();
        if self.tail.len() == self.tail_cap {
            out.extend_from_slice(&self.tail[self.cursor..]);
            out.extend_from_slice(&self.tail[..self.cursor]);
        } else {
            out.extend_from_slice(&self.tail);
        }
        out
    }

    /// The first `n` retained events.
    pub fn first_n(&self, n: usize) -> Vec<TraceEvent> {
        let mut v = self.events();
        v.truncate(n);
        v
    }

    /// The last `n` retained events.
    pub fn last_n(&self, n: usize) -> Vec<TraceEvent> {
        let v = self.events();
        v[v.len().saturating_sub(n)..].to_vec()
    }
}

/// One JSONL line (no trailing newline) for an event, with a fixed key
/// order so the output is byte-deterministic.
pub fn jsonl_line(e: &TraceEvent) -> String {
    let mut s = String::with_capacity(128);
    push_fields(&mut s, e);
    s.insert(0, '{');
    s.push('}');
    s
}

/// A JSONL line with a leading `"arm":"<label>"` field — the form the
/// differential fuzzer's divergence bundles use to tag which run each
/// event came from.
pub fn jsonl_line_tagged(arm: &str, e: &TraceEvent) -> String {
    let mut s = String::with_capacity(144);
    let _ = write!(s, "{{\"arm\":\"{arm}\",");
    let mut rest = String::with_capacity(128);
    push_fields(&mut rest, e);
    s.push_str(&rest);
    s.push('}');
    s
}

fn push_fields(s: &mut String, e: &TraceEvent) {
    let node: i64 = if e.node == u32::MAX {
        -1
    } else {
        i64::from(e.node)
    };
    let session: i64 = if e.session == u32::MAX {
        -1
    } else {
        i64::from(e.session)
    };
    let _ = write!(
        s,
        "\"k\":\"{}\",\"t_ps\":{},\"s\":{session},\"q\":{},\"n\":{node},\"hop\":{},\"len\":{}",
        e.kind.name(),
        e.t_ps,
        e.seq,
        e.hop,
        e.len_bits
    );
    match e.kind {
        TraceKind::Eligible => {
            let _ = write!(s, ",\"held_ps\":{}", e.aux_ps);
        }
        TraceKind::Depart => {
            let _ = write!(
                s,
                ",\"slack_ps\":{},\"arr_ps\":{},\"delivered\":{}",
                e.aux_ps, e.start_ps, e.delivered
            );
        }
        TraceKind::Violation => {
            let _ = write!(s, ",\"tag\":\"{}\"", e.tag);
        }
        _ => {}
    }
}

/// Render events as a JSONL stream (one object per line).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 1);
    for e in events {
        out.push_str(&jsonl_line(e));
        out.push('\n');
    }
    out
}

/// Microseconds with picosecond resolution, as Chrome's `ts` expects.
fn ts_us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

/// Render event groups as Chrome `trace_event` JSON. Each group (one
/// network run, identified by its master seed) becomes one `pid`, with a
/// `process_name` metadata record; nodes map to `tid`s.
pub fn chrome_trace_json(groups: &[(u64, Vec<TraceEvent>)]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    for (pid, (seed, events)) in groups.iter().enumerate() {
        push(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"network seed {seed:#018x}\"}}}}"
            ),
            &mut first,
        );
        for e in events {
            let tid = if e.node == u32::MAX { 0 } else { e.node };
            let line = match e.kind {
                TraceKind::Depart => format!(
                    "{{\"name\":\"s{}#{}\",\"cat\":\"hop\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":{pid},\"tid\":{tid},\"args\":{{\"session\":{},\"seq\":{},\"hop\":{},\
                     \"len_bits\":{},\"slack_ps\":{},\"delivered\":{}}}}}",
                    e.session,
                    e.seq,
                    ts_us(e.start_ps),
                    // lit-lint: allow(checked-clock-ops, "export-side clamp: a Depart always has t >= start, but a malformed ring must not abort the dump")
                    ts_us(e.t_ps.saturating_sub(e.start_ps)),
                    e.session,
                    e.seq,
                    e.hop,
                    e.len_bits,
                    e.aux_ps,
                    e.delivered
                ),
                TraceKind::Violation => format!(
                    "{{\"name\":\"{}\",\"cat\":\"violation\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{},\
                     \"pid\":{pid},\"tid\":{tid},\"args\":{{\"session\":{},\"seq\":{}}}}}",
                    e.tag,
                    ts_us(e.t_ps),
                    if e.session == u32::MAX {
                        -1
                    } else {
                        e.session as i64
                    },
                    e.seq
                ),
                kind => format!(
                    "{{\"name\":\"{}\",\"cat\":\"lifecycle\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                     \"pid\":{pid},\"tid\":{tid},\"args\":{{\"session\":{},\"seq\":{},\"hop\":{},\
                     \"aux_ps\":{}}}}}",
                    kind.name(),
                    ts_us(e.t_ps),
                    e.session,
                    e.seq,
                    e.hop,
                    e.aux_ps
                ),
            };
            push(line, &mut first);
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent {
            kind: TraceKind::Arrive,
            t_ps: i * 1000,
            session: 0,
            seq: i,
            node: 1,
            hop: 0,
            len_bits: 424,
            aux_ps: 0,
            start_ps: 0,
            delivered: false,
            tag: "",
        }
    }

    #[test]
    fn ring_keeps_exact_head_and_tail() {
        let mut r = TraceRing::new(3, 4);
        for i in 0..10 {
            r.record(ev(i));
        }
        assert_eq!(r.total(), 10);
        // head = 0,1,2; tail = 6,7,8,9; dropped = 3,4,5.
        assert_eq!(r.dropped(), 3);
        let seqs: Vec<u64> = r.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 6, 7, 8, 9]);
        assert_eq!(
            r.first_n(2).iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(
            r.last_n(2).iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![8, 9]
        );
    }

    #[test]
    fn ring_head_and_tail_never_overlap() {
        // Fewer events than caps: everything retained once.
        let mut r = TraceRing::new(8, 8);
        for i in 0..5 {
            r.record(ev(i));
        }
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.events().len(), 5);
        // Just over the tail cap: head must not duplicate tail survivors.
        let mut r = TraceRing::new(4, 4);
        for i in 0..6 {
            r.record(ev(i));
        }
        let seqs: Vec<u64> = r.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn zero_capacity_ring_counts_only() {
        let mut r = TraceRing::new(64, 0);
        assert!(!r.enabled());
        for i in 0..100 {
            r.record(ev(i));
        }
        assert_eq!(r.total(), 100);
        assert!(r.events().is_empty());
    }

    #[test]
    fn jsonl_lines_parse_and_carry_kind_fields() {
        let mut e = ev(7);
        e.kind = TraceKind::Depart;
        e.aux_ps = -250;
        e.start_ps = 6500;
        e.delivered = true;
        let line = jsonl_line(&e);
        let v = crate::json::Value::parse(&line).expect("line parses");
        assert_eq!(v.get("k").and_then(|k| k.as_str()), Some("depart"));
        assert_eq!(v.get("slack_ps").and_then(|s| s.as_f64()), Some(-250.0));
        assert_eq!(v.get("delivered").and_then(|d| d.as_bool()), Some(true));
        let tagged = jsonl_line_tagged("lit-heap", &e);
        let v = crate::json::Value::parse(&tagged).expect("tagged line parses");
        assert_eq!(v.get("arm").and_then(|a| a.as_str()), Some("lit-heap"));
    }

    #[test]
    fn chrome_export_is_valid_trace_event_json() {
        let mut depart = ev(3);
        depart.kind = TraceKind::Depart;
        depart.start_ps = 1000;
        depart.t_ps = 4500;
        let mut violation = ev(4);
        violation.kind = TraceKind::Violation;
        violation.tag = "delay-bound (ineq. 12/15)";
        let json = chrome_trace_json(&[(7, vec![ev(1), depart, violation])]);
        let v = crate::json::Value::parse(&json).expect("chrome JSON parses");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        assert_eq!(events.len(), 4); // metadata + 3
        for e in events {
            assert!(e.get("name").and_then(|n| n.as_str()).is_some());
            let ph = e.get("ph").and_then(|p| p.as_str()).unwrap();
            if ph != "M" {
                assert!(e.get("ts").and_then(|t| t.as_f64()).is_some());
            }
            if ph == "X" {
                assert!(e.get("dur").and_then(|d| d.as_f64()).unwrap() >= 0.0);
            }
        }
        // ts carries picosecond resolution: 4500 ps span starting 1000 ps.
        assert!(json.contains("\"ts\":0.001000"), "{json}");
        assert!(json.contains("\"dur\":0.003500"), "{json}");
    }
}
