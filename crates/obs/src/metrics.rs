//! The metrics registry: dense per-node / per-session-per-hop storage
//! with log₂-scale histograms, sized once when the network is built.
//!
//! Everything here is built for two constraints:
//!
//! * **hot-path cost** — recording is an array index plus an increment
//!   (the histogram bin is a `leading_zeros`), never a hash or a string;
//! * **order-independent pooling** — [`ObsShard::merge`] is commutative
//!   and associative (counters add, maxima max, bins add), so pooling
//!   shards from worker threads in completion order yields the same
//!   bytes as pooling them in any other order.
//!
//! All exported quantities are integers (counts, picoseconds, bits):
//! the JSON is byte-stable across platforms and thread counts, which the
//! golden-snapshot and thread-determinism tests rely on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A log₂-scale histogram over `u64` samples: bin 0 counts zeros, bin
/// `k ≥ 1` counts samples in `[2^(k-1), 2^k)`. 65 bins cover the full
/// `u64` range, so recording never saturates or clips.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    bins: [u64; 65],
    count: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            bins: [0; 65],
            count: 0,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let bin = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.bins[bin] += 1;
        self.count += 1;
        if v > self.max {
            self.max = v;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Add another histogram bin-by-bin (counters add, max takes max).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Append the JSON rendering: `{"count":N,"max":M,"bins":[[floor,
    /// count],...]}` with only non-empty bins, floors ascending.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"count\":{},\"max\":{},\"bins\":[",
            self.count, self.max
        );
        let mut first = true;
        for (k, &c) in self.bins.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let floor: u64 = if k == 0 { 0 } else { 1u64 << (k - 1) };
            let _ = write!(out, "[{floor},{c}]");
        }
        out.push_str("]}");
    }
}

/// A histogram over signed samples (deadline slack can be negative when
/// a packet departs late): magnitudes of negative samples in `neg`,
/// non-negative samples in `pos`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SignedLogHistogram {
    /// Non-negative samples (on time or early).
    pub pos: LogHistogram,
    /// Magnitudes of negative samples (late).
    pub neg: LogHistogram,
}

impl SignedLogHistogram {
    /// Record one signed sample.
    #[inline]
    pub fn record(&mut self, v: i64) {
        if v < 0 {
            self.neg.record(v.unsigned_abs());
        } else {
            self.pos.record(v as u64);
        }
    }

    /// Total samples across both signs.
    pub fn count(&self) -> u64 {
        self.pos.count() + self.neg.count()
    }

    /// Merge another signed histogram.
    pub fn merge(&mut self, other: &SignedLogHistogram) {
        self.pos.merge(&other.pos);
        self.neg.merge(&other.neg);
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"pos\":");
        self.pos.write_json(out);
        out.push_str(",\"neg\":");
        self.neg.write_json(out);
        out.push('}');
    }
}

/// Per-node observations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeObs {
    /// Last-bit packet arrivals at this node.
    pub arrivals: u64,
    /// Transmissions started (service starts).
    pub dispatches: u64,
    /// Transmissions finished.
    pub departures: u64,
    /// Bits transmitted.
    pub served_bits: u64,
    /// Eligible-queue depth (packets awaiting service, excluding the one
    /// in transmission), sampled at every arrival.
    pub eligible_depth: LogHistogram,
    /// Deadline slack `F − departure` in picoseconds at every departure
    /// (`pos` = on time or early, `neg` = late by that much).
    pub slack_ps: SignedLogHistogram,
}

impl NodeObs {
    fn merge(&mut self, other: &NodeObs) {
        self.arrivals += other.arrivals;
        self.dispatches += other.dispatches;
        self.departures += other.departures;
        self.served_bits += other.served_bits;
        self.eligible_depth.merge(&other.eligible_depth);
        self.slack_ps.merge(&other.slack_ps);
    }

    fn write_json(&self, idx: usize, out: &mut String) {
        let _ = write!(
            out,
            "{{\"node\":{idx},\"arrivals\":{},\"dispatches\":{},\"departures\":{},\"served_bits\":{},\"eligible_depth\":",
            self.arrivals, self.dispatches, self.departures, self.served_bits
        );
        self.eligible_depth.write_json(out);
        out.push_str(",\"slack_ps\":");
        self.slack_ps.write_json(out);
        out.push('}');
    }
}

/// One session's observations at one hop of its route.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HopObs {
    /// Service starts of this session's packets at this hop.
    pub dispatches: u64,
    /// Packets the regulator actually held (`E > arrival`); packets
    /// eligible on arrival bypass the regulator and are not counted.
    pub held: u64,
    /// Regulator holding time `E − arrival` in picoseconds, one sample
    /// per held packet.
    pub holding_ps: LogHistogram,
}

impl HopObs {
    fn merge(&mut self, other: &HopObs) {
        self.dispatches += other.dispatches;
        self.held += other.held;
        self.holding_ps.merge(&other.holding_ps);
    }

    fn write_json(&self, hop: usize, out: &mut String) {
        let _ = write!(
            out,
            "{{\"hop\":{hop},\"dispatches\":{},\"held\":{},\"holding_ps\":",
            self.dispatches, self.held
        );
        self.holding_ps.write_json(out);
        out.push('}');
    }
}

/// Per-session observations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionObs {
    /// Packets delivered past the final hop.
    pub delivered: u64,
    /// Bits served across all hops (each transmission counted once per
    /// hop, matching the "per-session served bits" service share).
    pub served_bits: u64,
    /// Per-hop observations along the route.
    pub hops: Vec<HopObs>,
}

impl SessionObs {
    fn merge(&mut self, other: &SessionObs) {
        self.delivered += other.delivered;
        self.served_bits += other.served_bits;
        if self.hops.len() < other.hops.len() {
            self.hops.resize(other.hops.len(), HopObs::default());
        }
        for (a, b) in self.hops.iter_mut().zip(other.hops.iter()) {
            a.merge(b);
        }
    }

    fn write_json(&self, idx: usize, out: &mut String) {
        let _ = write!(
            out,
            "{{\"session\":{idx},\"delivered\":{},\"served_bits\":{},\"hops\":[",
            self.delivered, self.served_bits
        );
        for (h, hop) in self.hops.iter().enumerate() {
            if h > 0 {
                out.push(',');
            }
            hop.write_json(h, out);
        }
        out.push_str("]}");
    }
}

/// All metrics of one network run (or the commutative pool of many).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsShard {
    /// Networks pooled into this shard.
    pub networks: u64,
    /// Per-node observations, indexed by node id.
    pub nodes: Vec<NodeObs>,
    /// Per-session observations, indexed by session id.
    pub sessions: Vec<SessionObs>,
    /// Future-event-set population, sampled at every packet arrival
    /// (covers both the heap and calendar backends identically).
    pub event_depth: LogHistogram,
    /// Conformance-oracle violations by inequality label.
    pub violations: BTreeMap<String, u64>,
}

impl ObsShard {
    /// An empty shard sized for `nodes` nodes and the given per-session
    /// hop counts.
    pub fn sized(nodes: usize, session_hops: &[usize]) -> Self {
        ObsShard {
            networks: 1,
            nodes: vec![NodeObs::default(); nodes],
            sessions: session_hops
                .iter()
                .map(|&h| SessionObs {
                    hops: vec![HopObs::default(); h],
                    ..SessionObs::default()
                })
                .collect(),
            event_depth: LogHistogram::new(),
            violations: BTreeMap::new(),
        }
    }

    /// Sum of all recorded oracle violations.
    pub fn violation_total(&self) -> u64 {
        self.violations.values().sum()
    }

    /// Pool another shard into this one. Commutative and associative, so
    /// the pooled result does not depend on worker completion order.
    pub fn merge(&mut self, other: &ObsShard) {
        self.networks += other.networks;
        if self.nodes.len() < other.nodes.len() {
            self.nodes.resize(other.nodes.len(), NodeObs::default());
        }
        for (a, b) in self.nodes.iter_mut().zip(other.nodes.iter()) {
            a.merge(b);
        }
        if self.sessions.len() < other.sessions.len() {
            self.sessions
                .resize(other.sessions.len(), SessionObs::default());
        }
        for (a, b) in self.sessions.iter_mut().zip(other.sessions.iter()) {
            a.merge(b);
        }
        self.event_depth.merge(&other.event_depth);
        for (k, v) in &other.violations {
            *self.violations.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Render the shard as deterministic JSON (integers only; fixed key
    /// order; `violations` sorted by label).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\n  \"schema\": \"lit-obs-metrics-v1\",\n  \"networks\": {},\n  \"event_depth\": ",
            self.networks
        );
        self.event_depth.write_json(&mut out);
        out.push_str(",\n  \"violations\": {");
        for (i, (k, v)) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\n  \"nodes\": [\n");
        for (i, n) in self.nodes.iter().enumerate() {
            out.push_str("    ");
            n.write_json(i, &mut out);
            out.push_str(if i + 1 < self.nodes.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"sessions\": [\n");
        for (i, s) in self.sessions.iter().enumerate() {
            out.push_str("    ");
            s.write_json(i, &mut out);
            out.push_str(if i + 1 < self.sessions.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_histogram_bins_by_powers_of_two() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), u64::MAX);
        let mut json = String::new();
        h.write_json(&mut json);
        // zeros → floor 0; 1 → floor 1; 2,3 → floor 2; 4..8 → floor 4;
        // 8 → floor 8; MAX → floor 2^63.
        assert_eq!(
            json,
            format!(
                "{{\"count\":9,\"max\":{},\"bins\":[[0,1],[1,2],[2,2],[4,2],[8,1],[{},1]]}}",
                u64::MAX,
                1u64 << 63
            )
        );
    }

    #[test]
    fn signed_histogram_splits_by_sign() {
        let mut h = SignedLogHistogram::default();
        h.record(5);
        h.record(0);
        h.record(-3);
        h.record(i64::MIN);
        assert_eq!(h.pos.count(), 2);
        assert_eq!(h.neg.count(), 2);
        assert_eq!(h.neg.max(), 1u64 << 63);
    }

    #[test]
    fn shard_merge_is_commutative() {
        let mut a = ObsShard::sized(2, &[1, 3]);
        a.nodes[0].arrivals = 5;
        a.nodes[1].eligible_depth.record(7);
        a.sessions[1].hops[2].held = 2;
        a.sessions[1].hops[2].holding_ps.record(1000);
        a.event_depth.record(3);
        a.violations.insert("delay-bound (ineq. 12/15)".into(), 1);

        let mut b = ObsShard::sized(3, &[2]);
        b.nodes[2].dispatches = 9;
        b.sessions[0].delivered = 4;
        b.violations.insert("delay-bound (ineq. 12/15)".into(), 2);
        b.violations.insert("lateness (non-saturation)".into(), 1);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.networks, 2);
        assert_eq!(ab.violation_total(), 4);
        assert_eq!(ab.nodes.len(), 3);
        assert_eq!(ab.sessions.len(), 2);
        assert_eq!(ab.sessions[1].hops[2].held, 2);
    }

    #[test]
    fn shard_json_is_deterministic() {
        let mut s = ObsShard::sized(1, &[2]);
        s.nodes[0].slack_ps.record(-500);
        s.nodes[0].slack_ps.record(12_000);
        assert_eq!(s.to_json(), s.clone().to_json());
        assert!(s.to_json().contains("\"schema\": \"lit-obs-metrics-v1\""));
    }
}
