//! A minimal JSON parser. The workspace deliberately carries no external
//! crates, so the trace-schema check, the bench-output tests and the
//! snapshot tooling parse JSON with this instead of `serde`.
//!
//! Scope: full JSON syntax (objects, arrays, strings with escapes,
//! numbers, booleans, null), numbers surfaced as `f64`, object keys kept
//! in document order. It is a validator/reader, not a writer — the crate
//! writes JSON by hand so the bytes stay deterministic.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (as `f64`; fine for counts up to 2⁵³).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keys in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parse a complete JSON document. Errors carry the byte offset.
    pub fn parse(text: &str) -> Result<Value, String> {
        let b = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Object member lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members in document order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        members.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        // Surrogate pairs are out of scope for the data
                        // this crate reads; map them to the replacement
                        // character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    c => return Err(format!("bad escape '\\{}'", c as char)),
                }
            }
            Some(_) => {
                // Copy a run of plain bytes (UTF-8 passes through intact).
                let start = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..*pos])
                        .map_err(|_| "invalid UTF-8".to_string())?,
                );
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number".to_string())?;
    s.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number '{s}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = Value::parse(
            r#"{"a": [1, -2.5, true, null, "x\ny"], "b": {"c": 1e3}, "empty": [], "eo": {}}"#,
        )
        .unwrap();
        let a = v.get("a").and_then(|a| a.as_array()).unwrap();
        assert_eq!(a.len(), 5);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_bool(), Some(true));
        assert_eq!(a[3], Value::Null);
        assert_eq!(a[4].as_str(), Some("x\ny"));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(|c| c.as_f64()),
            Some(1000.0)
        );
        assert_eq!(v.get("empty").and_then(|e| e.as_array()).unwrap().len(), 0);
        assert_eq!(v.get("eo").and_then(|e| e.as_object()).unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "12 34",
            "nul",
            "{\"a\":1,}",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Value::parse("\"\\u0041\\u00e9 plain é\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé plain é"));
    }
}
