//! # lit-obs — zero-cost-when-off observability
//!
//! The paper's claims are *per-session* guarantees — the firewall property
//! (ineq. 12/15), jitter (ineq. 17), the CCDF shift (ineq. 16) — but the
//! drain statistics only say whether a run met them, not *where* deadline
//! slack was consumed hop by hop or how long the regulators held packets.
//! This crate is the measurement substrate:
//!
//! * [`metrics`] — a per-network metrics shard ([`ObsShard`]): monotonic
//!   counters, gauges (maxima), and log₂-scale histograms for per-hop
//!   queue depth, deadline slack `F − departure`, regulator holding time
//!   `E − arrival`, eligible-queue occupancy, and per-session served bits.
//!   Storage is dense arrays sized once at network build — no string keys
//!   or map lookups on the hot path.
//! * [`trace`] — a structured packet-lifecycle tracer ([`TraceRing`]):
//!   arrive / eligible / dispatch / depart / drop / violation events in a
//!   bounded ring (exact head + bounded tail), exported as Chrome
//!   `trace_event` JSON for `chrome://tracing` or as compact JSONL.
//! * [`probe`] — the [`Probe`] trait the network executor calls. Every
//!   method has a no-op default; the executor holds an
//!   `Option<Box<dyn Probe>>`, so the disabled path is a single
//!   always-false branch per event (the CI overhead guard pins it ≤ 2%).
//! * [`hub`] — a process-global collection point. Shards merge
//!   commutatively (counters add, maxima max, histogram bins add) and
//!   trace rings are sorted by `(network seed, content hash)` at export,
//!   so the exported bytes are identical for any worker-thread count.
//! * [`json`] — a minimal JSON parser (the workspace carries no external
//!   crates) used by the trace-schema check and the bench-JSON tests.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod hub;
pub mod json;
pub mod metrics;
pub mod probe;
pub mod trace;

pub use metrics::{HopObs, LogHistogram, NodeObs, ObsShard, SessionObs, SignedLogHistogram};
pub use probe::{NoopProbe, ObsProbe, PacketView, Probe};
pub use trace::{TraceEvent, TraceKind, TraceRing};
