//! The [`Probe`] trait the network executor drives, plus the two
//! implementations: [`NoopProbe`] (every hook is the default no-op) and
//! [`ObsProbe`] (records into an [`ObsShard`] and a [`TraceRing`]).
//!
//! The executor holds an `Option<Box<dyn Probe>>`: when `None` (the
//! default) each hook site is one always-false branch and no
//! [`PacketView`] is ever materialized — that is the "zero-cost-when-off"
//! contract the CI overhead guard enforces. When `Some`, hooks fire at
//! packet arrival, regulator release, service start, departure and on
//! every conformance-oracle violation.

use crate::hub;
use crate::metrics::ObsShard;
use crate::trace::{TraceEvent, TraceKind, TraceRing};
use lit_sim::{Duration, Time};
use std::any::Any;

/// A probe's view of a packet: the identity and timing fields every hook
/// needs, decoupled from the network's own packet type (which lives in a
/// crate that depends on this one).
#[derive(Clone, Copy, Debug)]
pub struct PacketView {
    /// Owning session id.
    pub session: u32,
    /// Per-session sequence number (1-based, as the paper counts).
    pub seq: u64,
    /// Hop index along the session's route.
    pub hop: u32,
    /// Packet length, bits.
    pub len_bits: u32,
    /// Generation time at the first server.
    pub created: Time,
    /// Last-bit arrival time at the current node.
    pub arrived: Time,
}

/// Observability hooks called by the network executor. Every method has
/// a no-op default, so implementations override only what they consume
/// and the compiler can erase unused hooks entirely.
pub trait Probe: Send {
    /// Called once from `NetworkBuilder::build` with the final topology:
    /// the master seed, the node count, and each session's hop count —
    /// everything a dense registry needs to size itself up front.
    fn on_build(&mut self, _master_seed: u64, _nodes: usize, _session_hops: &[usize]) {}

    /// A packet's last bit arrived at `node`. `eligible_depth` is the
    /// node's eligible-queue population and `event_depth` the future-
    /// event-set population, both sampled at this instant.
    fn on_arrive(
        &mut self,
        _now: Time,
        _node: u32,
        _pkt: PacketView,
        _eligible_depth: usize,
        _event_depth: usize,
    ) {
    }

    /// The regulator released a held packet (`E > arrival` only);
    /// `held` is the holding time `E − arrival` of eq. 8–9.
    fn on_eligible(&mut self, _now: Time, _node: u32, _pkt: PacketView, _held: Duration) {}

    /// The packet won the eligible queue and service started.
    fn on_dispatch(&mut self, _now: Time, _node: u32, _pkt: PacketView) {}

    /// The packet's last bit left the node. `slack_ps` is the deadline
    /// slack `F − departure` (negative = late); `delivered` marks the
    /// final hop.
    fn on_depart(
        &mut self,
        _now: Time,
        _node: u32,
        _pkt: PacketView,
        _slack_ps: i64,
        _delivered: bool,
    ) {
    }

    /// The packet was discarded (reserved: the lossless executor never
    /// drops today).
    fn on_drop(&mut self, _now: Time, _node: u32, _pkt: PacketView) {}

    /// The conformance oracle recorded a violation; `tag` names the
    /// violated inequality (`ViolationKind::label`). `node` is
    /// `u32::MAX` for session-level checks.
    fn on_violation(
        &mut self,
        _now: Time,
        _tag: &'static str,
        _session: u32,
        _seq: u64,
        _node: u32,
    ) {
    }

    /// The network is done (drain or drop). Submitting probes deliver
    /// their shard to the global hub here.
    fn finish(&mut self, _now: Time) {}

    /// Downcast support, so callers that installed a concrete probe can
    /// take it back out of the network and read its registries directly.
    fn as_any(&self) -> Option<&dyn Any> {
        None
    }
}

/// The trivial probe: every hook is the inherited no-op. Exists mostly
/// as documentation of the disabled path and for tests that need *a*
/// probe without caring what it records.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

/// The recording probe: metrics into an [`ObsShard`], lifecycle events
/// into a [`TraceRing`].
#[derive(Debug, Default)]
pub struct ObsProbe {
    /// The metrics registry (sized at `on_build`).
    pub shard: ObsShard,
    /// The lifecycle trace.
    pub trace: TraceRing,
    /// Master seed of the observed network (stamped at `on_build`).
    pub seed: u64,
    submit: bool,
    finished: bool,
}

/// How many leading events a tracing [`ObsProbe`] retains exactly.
pub(crate) const TRACE_HEAD_CAP: usize = 64;

impl ObsProbe {
    /// A probe tracing into a ring of the given tail capacity (0 =
    /// metrics only, no trace storage).
    pub fn new(trace_cap: usize) -> Self {
        ObsProbe {
            shard: ObsShard::default(),
            trace: TraceRing::new(if trace_cap == 0 { 0 } else { TRACE_HEAD_CAP }, trace_cap),
            seed: 0,
            submit: false,
            finished: false,
        }
    }

    /// Mark this probe as hub-submitting: `finish` (called when the
    /// network drains or drops) merges the shard and trace into the
    /// process-global [`crate::hub`].
    pub fn submitting(mut self) -> Self {
        self.submit = true;
        self
    }

    /// `inline(always)`: the hooks run on the simulator's hot path and
    /// without the hint the 72-byte [`TraceEvent`] is memcpy'd through
    /// two call frames before it reaches the ring slot.
    #[inline(always)]
    fn record(&mut self, e: TraceEvent) {
        if self.trace.enabled() {
            self.trace.record(e);
        }
    }
}

impl Probe for ObsProbe {
    fn on_build(&mut self, master_seed: u64, nodes: usize, session_hops: &[usize]) {
        self.seed = master_seed;
        self.shard = ObsShard::sized(nodes, session_hops);
    }

    fn on_arrive(
        &mut self,
        now: Time,
        node: u32,
        pkt: PacketView,
        eligible_depth: usize,
        event_depth: usize,
    ) {
        // Ids outside the topology declared at `on_build` skip the dense
        // registries (an observer must never panic the simulation); the
        // id-agnostic trace below still records the event.
        if let Some(n) = self.shard.nodes.get_mut(node as usize) {
            n.arrivals += 1;
            n.eligible_depth.record(eligible_depth as u64);
        }
        self.shard.event_depth.record(event_depth as u64);
        self.record(TraceEvent {
            kind: TraceKind::Arrive,
            t_ps: now.as_ps(),
            session: pkt.session,
            seq: pkt.seq,
            node,
            hop: pkt.hop,
            len_bits: pkt.len_bits,
            aux_ps: 0,
            start_ps: 0,
            delivered: false,
            tag: "",
        });
    }

    fn on_eligible(&mut self, now: Time, node: u32, pkt: PacketView, held: Duration) {
        if let Some(h) = self
            .shard
            .sessions
            .get_mut(pkt.session as usize)
            .and_then(|s| s.hops.get_mut(pkt.hop as usize))
        {
            h.held += 1;
            h.holding_ps.record(held.as_ps());
        }
        self.record(TraceEvent {
            kind: TraceKind::Eligible,
            t_ps: now.as_ps(),
            session: pkt.session,
            seq: pkt.seq,
            node,
            hop: pkt.hop,
            len_bits: pkt.len_bits,
            aux_ps: held.as_ps().min(i64::MAX as u64) as i64,
            start_ps: 0,
            delivered: false,
            tag: "",
        });
    }

    fn on_dispatch(&mut self, now: Time, node: u32, pkt: PacketView) {
        if let Some(n) = self.shard.nodes.get_mut(node as usize) {
            n.dispatches += 1;
        }
        if let Some(h) = self
            .shard
            .sessions
            .get_mut(pkt.session as usize)
            .and_then(|s| s.hops.get_mut(pkt.hop as usize))
        {
            h.dispatches += 1;
        }
        self.record(TraceEvent {
            kind: TraceKind::Dispatch,
            t_ps: now.as_ps(),
            session: pkt.session,
            seq: pkt.seq,
            node,
            hop: pkt.hop,
            len_bits: pkt.len_bits,
            aux_ps: 0,
            start_ps: 0,
            delivered: false,
            tag: "",
        });
    }

    fn on_depart(&mut self, now: Time, node: u32, pkt: PacketView, slack_ps: i64, delivered: bool) {
        if let Some(n) = self.shard.nodes.get_mut(node as usize) {
            n.departures += 1;
            n.served_bits += u64::from(pkt.len_bits);
            n.slack_ps.record(slack_ps);
        }
        if let Some(s) = self.shard.sessions.get_mut(pkt.session as usize) {
            s.served_bits += u64::from(pkt.len_bits);
            if delivered {
                s.delivered += 1;
            }
        }
        self.record(TraceEvent {
            kind: TraceKind::Depart,
            t_ps: now.as_ps(),
            session: pkt.session,
            seq: pkt.seq,
            node,
            hop: pkt.hop,
            len_bits: pkt.len_bits,
            aux_ps: slack_ps,
            start_ps: pkt.arrived.as_ps(),
            delivered,
            tag: "",
        });
    }

    fn on_drop(&mut self, now: Time, node: u32, pkt: PacketView) {
        self.record(TraceEvent {
            kind: TraceKind::Drop,
            t_ps: now.as_ps(),
            session: pkt.session,
            seq: pkt.seq,
            node,
            hop: pkt.hop,
            len_bits: pkt.len_bits,
            aux_ps: 0,
            start_ps: 0,
            delivered: false,
            tag: "",
        });
    }

    fn on_violation(&mut self, now: Time, tag: &'static str, session: u32, seq: u64, node: u32) {
        *self.shard.violations.entry(tag.to_string()).or_insert(0) += 1;
        self.record(TraceEvent {
            kind: TraceKind::Violation,
            t_ps: now.as_ps(),
            session,
            seq,
            node,
            hop: 0,
            len_bits: 0,
            aux_ps: 0,
            start_ps: 0,
            delivered: false,
            tag,
        });
    }

    fn finish(&mut self, _now: Time) {
        if self.finished {
            return;
        }
        self.finished = true;
        if self.submit {
            let shard = std::mem::take(&mut self.shard);
            let trace = std::mem::take(&mut self.trace);
            hub::submit(shard, trace, self.seed);
        }
    }

    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(session: u32, seq: u64, hop: u32) -> PacketView {
        PacketView {
            session,
            seq,
            hop,
            len_bits: 424,
            created: Time::ZERO,
            arrived: Time::from_us(5),
        }
    }

    #[test]
    fn obs_probe_records_lifecycle_into_shard_and_ring() {
        let mut p = ObsProbe::new(128);
        p.on_build(42, 2, &[2]);
        assert_eq!(p.seed, 42);
        let t = Time::from_us(10);
        p.on_arrive(t, 0, view(0, 1, 0), 3, 17);
        p.on_eligible(t, 0, view(0, 1, 0), Duration::from_us(2));
        p.on_dispatch(t, 0, view(0, 1, 0));
        p.on_depart(t, 0, view(0, 1, 0), -700, false);
        p.on_depart(t, 1, view(0, 1, 1), 900, true);
        p.on_violation(t, "delay-bound (ineq. 12/15)", 0, 1, u32::MAX);

        assert_eq!(p.shard.nodes[0].arrivals, 1);
        assert_eq!(p.shard.nodes[0].eligible_depth.max(), 3);
        assert_eq!(p.shard.event_depth.max(), 17);
        assert_eq!(p.shard.sessions[0].hops[0].held, 1);
        assert_eq!(
            p.shard.sessions[0].hops[0].holding_ps.max(),
            Duration::from_us(2).as_ps()
        );
        assert_eq!(p.shard.sessions[0].hops[0].dispatches, 1);
        assert_eq!(p.shard.nodes[0].slack_ps.neg.count(), 1);
        assert_eq!(p.shard.nodes[1].slack_ps.pos.count(), 1);
        assert_eq!(p.shard.sessions[0].delivered, 1);
        assert_eq!(p.shard.sessions[0].served_bits, 848);
        assert_eq!(p.shard.violation_total(), 1);
        assert_eq!(p.trace.total(), 6);
        let kinds: Vec<TraceKind> = p.trace.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::Arrive,
                TraceKind::Eligible,
                TraceKind::Dispatch,
                TraceKind::Depart,
                TraceKind::Depart,
                TraceKind::Violation
            ]
        );
    }

    #[test]
    fn metrics_only_probe_stores_no_trace() {
        let mut p = ObsProbe::new(0);
        p.on_build(1, 1, &[1]);
        p.on_arrive(Time::from_us(1), 0, view(0, 1, 0), 0, 1);
        assert_eq!(p.shard.nodes[0].arrivals, 1);
        assert!(p.trace.events().is_empty());
    }

    #[test]
    fn noop_probe_compiles_to_defaults() {
        let mut p = NoopProbe;
        p.on_build(0, 4, &[1, 2]);
        p.on_arrive(Time::ZERO, 0, view(0, 1, 0), 0, 0);
        p.finish(Time::ZERO);
        assert!(p.as_any().is_none());
    }

    #[test]
    fn downcast_roundtrip() {
        let p: Box<dyn Probe> = Box::new(ObsProbe::new(8));
        let any = p.as_any().expect("ObsProbe downcasts");
        assert!(any.downcast_ref::<ObsProbe>().is_some());
    }
}
