//! Hierarchical (radix) timer wheel: exact, amortized-O(1) at any horizon.
//!
//! [`TimerWheel`] is the third engine behind `EventQueue` (besides the
//! binary heap and the [`CalendarQueue`](crate::CalendarQueue)). Like the
//! calendar it is an *exact* min-priority queue — it pops the identical
//! `(key, seq)` sequence, FIFO among equal keys — but where the calendar
//! keeps one ring whose bucket width must track the live-key distribution
//! (and rebuilds when it drifts), the wheel is a fixed radix decomposition
//! of the key space itself: no width estimation, no overflow heap, no
//! distribution-dependent degradation. Eligibility release stays O(1) even
//! when holding timers span from "next cell slot" (sub-microsecond) to the
//! far end of the simulated horizon.
//!
//! # Layout
//!
//! A `u64` picosecond key is read as eleven 6-bit digits (66 bits ≥ 64).
//! Level `l` has 64 slots; an entry lives at the *highest* level at which
//! its digit differs from the cursor's (level 0 if the key is inside the
//! cursor's 64-key block). Two invariants follow from insertion and are
//! preserved by every cursor move:
//!
//! 1. every live key is `>= cursor` (backdated pushes trigger a rebuild);
//! 2. an entry at level `l` agrees with the cursor on all digits above `l`
//!    and exceeds it at digit `l` (so equal keys are always co-located,
//!    which is what makes FIFO-exactness structural rather than lucky).
//!
//! Level-0 slots therefore hold exactly one key each, and popping is: take
//! the front of the lowest occupied level-0 slot (a `u64` occupancy bitmap
//! per level makes "lowest occupied" one `trailing_zeros`). When level 0 is
//! empty, the lowest occupied slot of the lowest occupied level is
//! *cascaded*: the cursor jumps to that slot's span and its entries are
//! re-placed, all landing at strictly lower levels. An entry can cascade at
//! most ten times over its lifetime, so the per-event cost is O(1)
//! amortized regardless of how far ahead it was scheduled.

use std::cell::Cell;
use std::collections::VecDeque;

/// Bits per digit; each level fans out into `1 << BITS` slots.
const BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Levels needed to cover all 64 key bits (`11 * 6 = 66`).
const LEVELS: usize = 11;

struct Entry<T> {
    key: u64,
    /// Monotone push counter; the FIFO tie-break among equal keys.
    seq: u64,
    item: T,
}

/// Cached location of the current minimum, so `peek` + `pop` (the
/// executor's idiom) costs one scan, not two.
#[derive(Clone, Copy)]
struct MinPos {
    level: usize,
    slot: usize,
    idx: usize,
    key: u64,
    seq: u64,
}

/// An exact min-priority queue over `u64` keys with amortized-O(1)
/// push/pop and FIFO order among equal keys, backed by a hierarchical
/// timer wheel.
///
/// ```
/// use lit_sim::TimerWheel;
///
/// let mut w = TimerWheel::new();
/// w.push(30, "c");
/// w.push(10, "a");
/// w.push(10, "b"); // same key: FIFO
/// assert_eq!(w.pop(), Some((10, "a")));
/// assert_eq!(w.pop(), Some((10, "b")));
/// assert_eq!(w.pop(), Some((30, "c")));
/// assert_eq!(w.pop(), None);
/// ```
pub struct TimerWheel<T> {
    /// `LEVELS * SLOTS` slot queues, flattened (`level * SLOTS + slot`).
    /// A slot queue is append-at-back / take-at-front, so both direct
    /// pushes and cascade re-placements preserve seq order.
    slots: Box<[VecDeque<Entry<T>>]>,
    /// Per-level occupancy bitmap; bit `s` set iff slot `s` is non-empty.
    occ: [u64; LEVELS],
    /// Lower bound on every live key (the last popped key, the span start
    /// of the last cascaded slot, or the smallest pushed key since).
    cursor: u64,
    /// Total live entries.
    len: usize,
    /// Monotone push counter.
    next_seq: u64,
    hint: Cell<Option<MinPos>>,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel. The slot table is allocated eagerly (`704` empty
    /// queues) but the queues themselves allocate only on first use.
    pub fn new() -> Self {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| VecDeque::new()).collect(),
            occ: [0; LEVELS],
            cursor: 0,
            len: 0,
            next_seq: 0,
            hint: Cell::new(None),
        }
    }

    /// An empty wheel; `cap` is accepted for interface parity with the
    /// other engines but ignored — the wheel's geometry is fixed and its
    /// slot queues grow on demand.
    pub fn with_capacity(_cap: usize) -> Self {
        Self::new()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all entries, keeping allocations. The seq counter keeps
    /// increasing so global FIFO order survives a clear.
    pub fn clear(&mut self) {
        for l in 0..LEVELS {
            let mut occ = self.occ[l];
            self.occ[l] = 0;
            while occ != 0 {
                let s = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                // lit-lint: allow(no-panic-hot-path, "l < LEVELS and s < SLOTS: 6-bit bitmap index")
                self.slots[l * SLOTS + s].clear();
            }
        }
        self.len = 0;
        self.hint.set(None);
    }

    /// The level an entry with `key` belongs at, relative to the current
    /// cursor: the highest 6-bit digit at which they differ.
    fn level_of(&self, key: u64) -> usize {
        let x = key ^ self.cursor;
        if x == 0 {
            0
        } else {
            ((63 - x.leading_zeros()) / BITS) as usize
        }
    }

    /// Structural insert at the level/slot dictated by the cursor.
    /// Does not touch `len`; callers account for it.
    fn place(&mut self, e: Entry<T>) {
        let l = self.level_of(e.key);
        let s = ((e.key >> (BITS * l as u32)) & (SLOTS as u64 - 1)) as usize;
        // lit-lint: allow(no-panic-hot-path, "l < LEVELS (64-bit key / 6-bit digits) and s < SLOTS (6-bit mask)")
        self.slots[l * SLOTS + s].push_back(e);
        // lit-lint: allow(no-panic-hot-path, "l < LEVELS as above")
        self.occ[l] |= 1 << s;
    }

    /// Insert `item` at `key`. Keys may arrive out of order; a key below
    /// the cursor (already-popped territory) forces a full rebuild, which
    /// executors never trigger because simulation time is monotone.
    pub fn push(&mut self, key: u64, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.hint.set(None);
        if self.len == 0 {
            self.cursor = key;
        } else if key < self.cursor {
            self.rebuild(key);
        }
        self.place(Entry { key, seq, item });
        self.len += 1;
    }

    /// Re-anchor the wheel at `new_front` and re-place every entry.
    /// Re-placement in seq order keeps equal-key entries FIFO in their
    /// new slots. Cold path: only a backdated push lands here.
    fn rebuild(&mut self, new_front: u64) {
        let mut all: Vec<Entry<T>> = Vec::with_capacity(self.len);
        for l in 0..LEVELS {
            let mut occ = self.occ[l];
            self.occ[l] = 0;
            while occ != 0 {
                let s = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                // lit-lint: allow(no-panic-hot-path, "l < LEVELS and s < SLOTS: 6-bit bitmap index")
                all.extend(self.slots[l * SLOTS + s].drain(..));
            }
        }
        all.sort_unstable_by_key(|e| e.seq);
        self.cursor = new_front;
        for e in all {
            self.place(e);
        }
    }

    /// Empty the lowest occupied slot of the lowest occupied level `>= 1`
    /// into lower levels, advancing the cursor to that slot's span start.
    /// Every re-placed entry lands at a strictly lower level, so each
    /// entry cascades at most `LEVELS - 1` times over its lifetime.
    fn cascade(&mut self) {
        let mut l = 1;
        // lit-lint: allow(no-panic-hot-path, "l < LEVELS: loop guard checks the bound before indexing")
        while l < LEVELS && self.occ[l] == 0 {
            l += 1;
        }
        debug_assert!(l < LEVELS, "wheel: non-empty but no occupied level");
        if l >= LEVELS {
            return;
        }
        // lit-lint: allow(no-panic-hot-path, "l < LEVELS: guarded by the check above")
        let s = self.occ[l].trailing_zeros() as usize;
        let shift = BITS * l as u32;
        debug_assert!(
            s as u64 > (self.cursor >> shift) & (SLOTS as u64 - 1),
            "wheel: occupied slot at or below the cursor digit"
        );
        // lit-lint: allow(no-panic-hot-path, "l < LEVELS as above")
        self.occ[l] &= !(1 << s);
        // lit-lint: allow(no-panic-hot-path, "l < LEVELS and s < SLOTS: 6-bit bitmap index")
        let drained = std::mem::take(&mut self.slots[l * SLOTS + s]);
        // Span start of the cascaded slot: cursor digits above `l` kept,
        // digit `l` set to `s`, everything below zeroed. The top level's
        // "digits above" are empty, hence the shift guard.
        let hi = shift + BITS;
        let high = if hi >= 64 {
            0
        } else {
            (self.cursor >> hi) << hi
        };
        self.cursor = high | ((s as u64) << shift);
        for e in drained {
            self.place(e);
        }
    }

    /// Pop the front entry of level-0 slot `s` and advance the cursor to
    /// its key. Caller guarantees the slot is occupied.
    fn take_front(&mut self, s: usize) -> (u64, T) {
        // lit-lint: allow(no-panic-hot-path, "s < SLOTS: 6-bit bitmap index")
        let q = &mut self.slots[s];
        // lit-lint: allow(no-panic-hot-path, "caller found slot s occupied in the level-0 bitmap, and the bitmap tracks emptiness exactly")
        let e = q.pop_front().expect("wheel: occupied slot is empty");
        if q.is_empty() {
            self.occ[0] &= !(1 << s);
        }
        self.len -= 1;
        self.cursor = e.key;
        (e.key, e.item)
    }

    /// Remove and return the smallest-key entry (FIFO among equal keys).
    pub fn pop(&mut self) -> Option<(u64, T)> {
        if self.len == 0 {
            return None;
        }
        if let Some(h) = self.hint.take() {
            if h.level == 0 {
                let (key, item) = self.take_front(h.slot);
                debug_assert_eq!(key, h.key);
                return Some((key, item));
            }
        }
        loop {
            let l0 = self.occ[0];
            if l0 != 0 {
                return Some(self.take_front(l0.trailing_zeros() as usize));
            }
            self.cascade();
        }
    }

    /// Locate the minimum `(key, seq)` entry.
    ///
    /// Level-0 entries (keys in the cursor's 64-key block) always precede
    /// higher-level ones, and within level 0 the lowest occupied slot is
    /// the single smallest key, whose queue front is the oldest push. With
    /// level 0 empty, invariant 2 orders levels bottom-up: an entry at
    /// level `l` matches the cursor on every digit above `l`, so it beats
    /// any entry at a level `m > l` (which exceeds the cursor — and hence
    /// the level-`l` entry — at digit `m`). The lowest occupied slot of
    /// the lowest occupied level therefore holds the global minimum; only
    /// that one queue, which mixes digits below `l`, needs a linear scan.
    fn find_min(&self) -> Option<MinPos> {
        if self.len == 0 {
            return None;
        }
        let l0 = self.occ[0];
        if l0 != 0 {
            let s = l0.trailing_zeros() as usize;
            // lit-lint: allow(no-panic-hot-path, "s < SLOTS: 6-bit bitmap index")
            let e = self.slots[s]
                .front()
                // lit-lint: allow(no-panic-hot-path, "the level-0 bitmap tracks emptiness exactly")
                .expect("wheel: occupied slot is empty");
            return Some(MinPos {
                level: 0,
                slot: s,
                idx: 0,
                key: e.key,
                seq: e.seq,
            });
        }
        let mut l = 1;
        // lit-lint: allow(no-panic-hot-path, "l < LEVELS: loop guard checks the bound before indexing")
        while l < LEVELS && self.occ[l] == 0 {
            l += 1;
        }
        if l >= LEVELS {
            debug_assert!(false, "wheel: non-empty but no occupied level");
            return None;
        }
        // lit-lint: allow(no-panic-hot-path, "l < LEVELS: guarded by the check above")
        let s = self.occ[l].trailing_zeros() as usize;
        // lit-lint: allow(no-panic-hot-path, "l < LEVELS and s < SLOTS: 6-bit bitmap index")
        let (idx, e) = self.slots[l * SLOTS + s]
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.key, e.seq))
            // lit-lint: allow(no-panic-hot-path, "the bitmap tracks emptiness exactly, so the slot queue is non-empty")
            .expect("wheel: occupied slot is empty");
        Some(MinPos {
            level: l,
            slot: s,
            idx,
            key: e.key,
            seq: e.seq,
        })
    }

    /// The smallest key, without removing it. Caches the found position,
    /// so the executor's peek-then-pop idiom scans once.
    pub fn peek_key(&self) -> Option<u64> {
        if let Some(h) = self.hint.get() {
            return Some(h.key);
        }
        let m = self.find_min();
        self.hint.set(m);
        m.map(|m| m.key)
    }

    /// The smallest-key entry (key and a borrow of its item), without
    /// removing it. Shares the cached position with `peek_key`/`pop`.
    pub fn peek(&self) -> Option<(u64, &T)> {
        let pos = match self.hint.get() {
            Some(h) => h,
            None => {
                let m = self.find_min()?;
                self.hint.set(Some(m));
                m
            }
        };
        // lit-lint: allow(no-panic-hot-path, "hint invariant: find_min cached a live position and every mutation clears the hint")
        let e = &self.slots[pos.level * SLOTS + pos.slot][pos.idx];
        debug_assert_eq!((e.key, e.seq), (pos.key, pos.seq));
        Some((e.key, e.item_ref()))
    }
}

impl<T> Entry<T> {
    fn item_ref(&self) -> &T {
        &self.item
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn orders_and_fifo_ties() {
        let mut w = TimerWheel::new();
        for i in (0..100u64).rev() {
            w.push(i * 1_000_003, i);
        }
        for i in 0..1000u64 {
            w.push(500, 100 + i);
        }
        let mut prev = None;
        let mut last_seq_at_500 = None;
        let mut n = 0;
        while let Some((k, v)) = w.pop() {
            if let Some(p) = prev {
                assert!(k >= p, "keys out of order: {k} after {p}");
            }
            if k == 500 && v >= 100 {
                if let Some(s) = last_seq_at_500 {
                    assert_eq!(v, s + 1, "ties not FIFO");
                }
                last_seq_at_500 = Some(v);
            }
            prev = Some(k);
            n += 1;
        }
        assert_eq!(n, 1100);
    }

    #[test]
    fn peek_matches_pop() {
        let mut w = TimerWheel::new();
        let keys = [9u64, 3, 3, 1 << 40, 7, u64::MAX, 0, 64, 63, 65];
        for (i, &k) in keys.iter().enumerate() {
            w.push(k, i);
        }
        while !w.is_empty() {
            let pk = w.peek_key().unwrap();
            let (k2, &v) = w.peek().unwrap();
            let (k, v2) = w.pop().unwrap();
            assert_eq!((pk, k2, v), (k, k, v2));
        }
        assert_eq!(w.peek_key(), None);
        assert_eq!(w.peek(), None);
    }

    #[test]
    fn backdated_push_rebuilds() {
        let mut w = TimerWheel::new();
        w.push(1 << 50, "far");
        assert_eq!(w.peek_key(), Some(1 << 50));
        w.push(5, "near"); // below the cursor: rebuild
        w.push(5, "near2");
        assert_eq!(w.pop(), Some((5, "near")));
        assert_eq!(w.pop(), Some((5, "near2")));
        assert_eq!(w.pop(), Some((1 << 50, "far")));
    }

    #[test]
    fn sentinels_at_the_top_of_the_key_space() {
        let mut w = TimerWheel::new();
        w.push(u64::MAX, "a");
        w.push(u64::MAX - 1, "b");
        w.push(u64::MAX, "c");
        w.push(0, "zero"); // backdated: rebuild with sentinels live
        assert_eq!(w.pop(), Some((0, "zero")));
        assert_eq!(w.pop(), Some((u64::MAX - 1, "b")));
        assert_eq!(w.pop(), Some((u64::MAX, "a")));
        assert_eq!(w.pop(), Some((u64::MAX, "c")));
        assert_eq!(w.pop(), None);
        // Cursor parked at the top: the wheel must accept new work.
        w.push(42, "again");
        assert_eq!(w.pop(), Some((42, "again")));
    }

    /// Differential fuzz against a reference heap ordered by `(key, seq)`.
    #[test]
    fn agrees_with_reference_heap() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..50 {
            let mut w = TimerWheel::new();
            let mut model: BinaryHeap<std::cmp::Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut floor = 0u64; // keep pushes monotone-ish; dips exercise rebuild
            for _ in 0..2000 {
                let r = rng();
                if r % 100 < 60 || model.is_empty() {
                    let key = match r % 10 {
                        0 => floor,                    // exact tie with cursor
                        1 => u64::MAX - (r >> 32) % 4, // sentinel band
                        2 => (r >> 8) % 64,            // backdated small keys
                        _ => floor.saturating_add((r >> 16) % (1 << (round % 48 + 8))),
                    };
                    w.push(key, seq);
                    model.push(std::cmp::Reverse((key, seq)));
                    seq += 1;
                } else {
                    let got = w.pop();
                    let want = model.pop().map(|std::cmp::Reverse((k, s))| (k, s));
                    assert_eq!(got, want);
                    if let Some((k, _)) = got {
                        floor = k;
                    }
                }
            }
            while let Some(std::cmp::Reverse((k, s))) = model.pop() {
                assert_eq!(w.pop(), Some((k, s)));
            }
            assert_eq!(w.pop(), None);
            assert!(w.is_empty());
        }
    }

    #[test]
    fn clear_keeps_seq_monotone() {
        let mut w = TimerWheel::new();
        w.push(10, 0);
        w.push(20, 1);
        w.clear();
        assert!(w.is_empty());
        w.push(10, 2);
        w.push(10, 3);
        assert_eq!(w.pop(), Some((10, 2)));
        assert_eq!(w.pop(), Some((10, 3)));
    }
}
