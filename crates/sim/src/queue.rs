//! Deterministic future-event set.
//!
//! [`EventQueue`] is a time-ordered priority queue with a crucial extra
//! guarantee: events scheduled for the *same* instant pop in the order they
//! were pushed (FIFO). A plain `BinaryHeap` keyed on time alone makes
//! same-time ordering depend on heap internals, which would make runs
//! non-reproducible across refactors; we break ties with a monotonically
//! increasing sequence number instead.

use crate::time::Time;
use core::cmp::Ordering;
use std::collections::BinaryHeap;

/// A single scheduled entry: payload `E` due at `at`.
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The future-event set of a discrete-event simulation.
///
/// ```
/// use lit_sim::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_ms(2), "late");
/// q.push(Time::from_ms(1), "early");
/// q.push(Time::from_ms(1), "early-second");
/// assert_eq!(q.pop(), Some((Time::from_ms(1), "early")));
/// assert_eq!(q.pop(), Some((Time::from_ms(1), "early-second")));
/// assert_eq!(q.pop(), Some((Time::from_ms(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// An empty queue with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at `at`.
    ///
    /// Pushing an event in the past is allowed here (the queue is just a
    /// data structure); the executor is responsible for asserting that time
    /// never flows backwards.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The due time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (diagnostic counter).
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }

    /// Drop all pending events, keeping allocations.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        for i in (0..100u64).rev() {
            q.push(Time::from_ms(i), i);
        }
        let mut prev = Time::ZERO;
        let mut n = 0;
        while let Some((t, e)) = q.pop() {
            assert!(t >= prev);
            assert_eq!(t, Time::from_ms(e));
            prev = t;
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = EventQueue::new();
        let t = Time::from_secs(1);
        for i in 0..1000 {
            q.push(t, i);
        }
        for i in 0..1000 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(Time::from_ms(10), "a");
        q.push(Time::from_ms(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(Time::from_ms(7), "c");
        q.push(Time::from_ms(6), "d");
        assert_eq!(q.pop().unwrap().1, "d");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_and_counters() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ms(3), ());
        q.push(Time::from_ms(1), ());
        assert_eq!(q.peek_time(), Some(Time::from_ms(1)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pushed(), 2);
        q.clear();
        assert!(q.is_empty());
        // seq keeps increasing after clear, preserving global FIFO.
        q.push(Time::from_ms(1) + Duration::ZERO, ());
        assert_eq!(q.pushed(), 3);
    }
}
