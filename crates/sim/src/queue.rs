//! Deterministic future-event set.
//!
//! [`EventQueue`] is a time-ordered priority queue with a crucial extra
//! guarantee: events scheduled for the *same* instant pop in the order they
//! were pushed (FIFO). A plain `BinaryHeap` keyed on time alone makes
//! same-time ordering depend on heap internals, which would make runs
//! non-reproducible across refactors; we break ties with a monotonically
//! increasing sequence number instead.
//!
//! The queue has two interchangeable engines (see [`EventBackend`]):
//! the default binary heap ([`KeyedEntry`] in a `BinaryHeap`, O(log n) per
//! op, the long-standing bit-exact baseline) and the amortized-O(1)
//! [`CalendarQueue`] ring. Both pop the identical `(time, seq)` sequence —
//! the calendar is an *exact* structure, not the paper's approximate line
//! -card variant — so the choice is purely a performance knob.

use crate::calendar::CalendarQueue;
use crate::entry::KeyedEntry;
use crate::time::Time;
use crate::wheel::TimerWheel;
use std::collections::BinaryHeap;

/// Which engine an [`EventQueue`] runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EventBackend {
    /// Binary heap: O(log n) per op. The default, kept as the reference
    /// implementation for bit-exact reproducibility of historical runs.
    #[default]
    Heap,
    /// Ring-array calendar queue: amortized O(1) per op, same pop order.
    Calendar,
    /// Hierarchical timer wheel: amortized O(1) per op at any horizon,
    /// same pop order. No width estimation or rebuild heuristics.
    Wheel,
}

enum Inner<E> {
    Heap(BinaryHeap<KeyedEntry<Time, E>>),
    Calendar(CalendarQueue<E>),
    Wheel(TimerWheel<E>),
}

/// The future-event set of a discrete-event simulation.
///
/// ```
/// use lit_sim::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_ms(2), "late");
/// q.push(Time::from_ms(1), "early");
/// q.push(Time::from_ms(1), "early-second");
/// assert_eq!(q.pop(), Some((Time::from_ms(1), "early")));
/// assert_eq!(q.pop(), Some((Time::from_ms(1), "early-second")));
/// assert_eq!(q.pop(), Some((Time::from_ms(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
///
/// The calendar backend pops the same sequence:
///
/// ```
/// use lit_sim::{EventBackend, EventQueue, Time};
///
/// let mut q = EventQueue::with_backend(EventBackend::Calendar);
/// q.push(Time::from_ms(2), "late");
/// q.push(Time::from_ms(1), "early");
/// assert_eq!(q.pop(), Some((Time::from_ms(1), "early")));
/// assert_eq!(q.pop(), Some((Time::from_ms(2), "late")));
/// ```
pub struct EventQueue<E> {
    inner: Inner<E>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue on the default (heap) backend.
    pub fn new() -> Self {
        Self::with_backend(EventBackend::Heap)
    }

    /// An empty queue on the chosen backend.
    pub fn with_backend(backend: EventBackend) -> Self {
        EventQueue {
            inner: match backend {
                EventBackend::Heap => Inner::Heap(BinaryHeap::new()),
                EventBackend::Calendar => Inner::Calendar(CalendarQueue::new()),
                EventBackend::Wheel => Inner::Wheel(TimerWheel::new()),
            },
            next_seq: 0,
        }
    }

    /// An empty heap-backed queue with room for `cap` events before
    /// reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_capacity_in(cap, EventBackend::Heap)
    }

    /// An empty queue on the chosen backend, pre-sized for `cap` events.
    pub fn with_capacity_in(cap: usize, backend: EventBackend) -> Self {
        EventQueue {
            inner: match backend {
                EventBackend::Heap => Inner::Heap(BinaryHeap::with_capacity(cap)),
                EventBackend::Calendar => Inner::Calendar(CalendarQueue::with_capacity(cap)),
                EventBackend::Wheel => Inner::Wheel(TimerWheel::with_capacity(cap)),
            },
            next_seq: 0,
        }
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> EventBackend {
        match self.inner {
            Inner::Heap(_) => EventBackend::Heap,
            Inner::Calendar(_) => EventBackend::Calendar,
            Inner::Wheel(_) => EventBackend::Wheel,
        }
    }

    /// Schedule `event` to fire at `at`.
    ///
    /// Pushing an event in the past is allowed here (the queue is just a
    /// data structure); the executor is responsible for asserting that time
    /// never flows backwards.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.inner {
            Inner::Heap(h) => h.push(KeyedEntry {
                key: at,
                seq,
                item: event,
            }),
            // The calendar and the wheel keep their own monotone seq,
            // incremented once per push just like ours, so FIFO order
            // matches the heap's.
            Inner::Calendar(c) => c.push(at.as_ps() as u128, event),
            Inner::Wheel(w) => w.push(at.as_ps(), event),
        }
    }

    /// Remove and return the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        match &mut self.inner {
            Inner::Heap(h) => h.pop().map(|e| (e.key, e.item)),
            // lit-lint: allow(raw-time-arithmetic, "calendar keys are as_ps() values widened to u128 at push; the narrowing is a lossless roundtrip")
            Inner::Calendar(c) => c.pop().map(|(k, e)| (Time::from_ps(k as u64), e)),
            Inner::Wheel(w) => w.pop().map(|(k, e)| (Time::from_ps(k), e)),
        }
    }

    /// Remove and return the earliest event only if `pred` accepts it.
    ///
    /// The predicate sees the event's due time and a borrow of its
    /// payload; when it returns `false` (or the queue is empty) nothing is
    /// removed. This is the executor's batching primitive: it drains runs
    /// of same-instant, same-target events without a speculative pop that
    /// would have to be pushed back (disturbing FIFO seq order).
    pub fn pop_if<F>(&mut self, pred: F) -> Option<(Time, E)>
    where
        F: FnOnce(Time, &E) -> bool,
    {
        let take = match &self.inner {
            Inner::Heap(h) => h.peek().map(|e| pred(e.key, &e.item)),
            // lit-lint: allow(raw-time-arithmetic, "calendar keys are as_ps() values widened to u128 at push; the narrowing is a lossless roundtrip")
            Inner::Calendar(c) => c.peek().map(|(k, e)| pred(Time::from_ps(k as u64), e)),
            Inner::Wheel(w) => w.peek().map(|(k, e)| pred(Time::from_ps(k), e)),
        };
        // The peek above caches the min position (calendar/wheel hints),
        // so the pop that follows does not re-scan.
        if take == Some(true) {
            self.pop()
        } else {
            None
        }
    }

    /// The due time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        match &self.inner {
            Inner::Heap(h) => h.peek().map(|e| e.key),
            // lit-lint: allow(raw-time-arithmetic, "calendar keys are as_ps() values widened to u128 at push; the narrowing is a lossless roundtrip")
            Inner::Calendar(c) => c.peek_key().map(|k| Time::from_ps(k as u64)),
            Inner::Wheel(w) => w.peek_key().map(Time::from_ps),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Heap(h) => h.len(),
            Inner::Calendar(c) => c.len(),
            Inner::Wheel(w) => w.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever pushed (diagnostic counter).
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }

    /// Drop all pending events, keeping allocations.
    pub fn clear(&mut self) {
        match &mut self.inner {
            Inner::Heap(h) => h.clear(),
            Inner::Calendar(c) => c.clear(),
            Inner::Wheel(w) => w.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    const BACKENDS: [EventBackend; 3] = [
        EventBackend::Heap,
        EventBackend::Calendar,
        EventBackend::Wheel,
    ];

    #[test]
    fn orders_by_time() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            for i in (0..100u64).rev() {
                q.push(Time::from_ms(i), i);
            }
            let mut prev = Time::ZERO;
            let mut n = 0;
            while let Some((t, e)) = q.pop() {
                assert!(t >= prev);
                assert_eq!(t, Time::from_ms(e));
                prev = t;
                n += 1;
            }
            assert_eq!(n, 100);
        }
    }

    #[test]
    fn fifo_among_ties() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            let t = Time::from_secs(1);
            for i in 0..1000 {
                q.push(t, i);
            }
            for i in 0..1000 {
                assert_eq!(q.pop(), Some((t, i)));
            }
        }
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            q.push(Time::from_ms(10), "a");
            q.push(Time::from_ms(5), "b");
            assert_eq!(q.pop().unwrap().1, "b");
            q.push(Time::from_ms(7), "c");
            q.push(Time::from_ms(6), "d");
            assert_eq!(q.pop().unwrap().1, "d");
            assert_eq!(q.pop().unwrap().1, "c");
            assert_eq!(q.pop().unwrap().1, "a");
            assert!(q.is_empty());
        }
    }

    #[test]
    fn peek_and_counters() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            assert_eq!(q.peek_time(), None);
            q.push(Time::from_ms(3), ());
            q.push(Time::from_ms(1), ());
            assert_eq!(q.peek_time(), Some(Time::from_ms(1)));
            assert_eq!(q.len(), 2);
            assert_eq!(q.pushed(), 2);
            q.clear();
            assert!(q.is_empty());
            // seq keeps increasing after clear, preserving global FIFO.
            q.push(Time::from_ms(1) + Duration::ZERO, ());
            assert_eq!(q.pushed(), 3);
        }
    }

    #[test]
    fn backends_agree_with_sentinels() {
        let mut heap = EventQueue::with_backend(EventBackend::Heap);
        let mut cal = EventQueue::with_backend(EventBackend::Calendar);
        let mut wheel = EventQueue::with_backend(EventBackend::Wheel);
        let pushes = [
            Time::from_ms(5),
            Time::MAX,
            Time::from_ms(5),
            Time::ZERO,
            Time::MAX,
            Time::from_secs(3),
        ];
        for (i, &t) in pushes.iter().enumerate() {
            heap.push(t, i);
            cal.push(t, i);
            wheel.push(t, i);
        }
        for _ in 0..pushes.len() {
            let h = heap.pop();
            assert_eq!(h, cal.pop());
            assert_eq!(h, wheel.pop());
        }
        assert_eq!(heap.pop(), None);
        assert_eq!(cal.pop(), None);
        assert_eq!(wheel.pop(), None);
    }

    #[test]
    fn pop_if_takes_only_matching_front() {
        for backend in BACKENDS {
            let mut q = EventQueue::with_backend(backend);
            q.push(Time::from_ms(1), "a");
            q.push(Time::from_ms(1), "b");
            q.push(Time::from_ms(2), "c");
            // Front matches: removed.
            assert_eq!(
                q.pop_if(|t, e| t == Time::from_ms(1) && *e == "a"),
                Some((Time::from_ms(1), "a"))
            );
            // Front is "b", predicate rejects: nothing removed.
            assert_eq!(q.pop_if(|_, e| *e == "c"), None);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some((Time::from_ms(1), "b")));
            assert_eq!(q.pop_if(|_, _| true), Some((Time::from_ms(2), "c")));
            assert_eq!(q.pop_if(|_, _| true), None);
        }
    }
}
