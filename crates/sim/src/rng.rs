//! Reproducible random-number streams.
//!
//! Every stochastic component of the simulator (each traffic source, in
//! practice) owns its own [`SimRng`] stream, derived from a single master
//! seed with [`SeedSeq`]. Per-component streams mean that adding or removing
//! one source does not perturb the random sequence seen by any other source
//! — essential for controlled experiments ("same cross traffic, different
//! tagged session") and for the paper's firewall-property demonstrations.

use crate::time::Duration;

/// SplitMix64 step: a high-quality 64-bit mixer used only to derive child
/// seeds from a master seed. (Algorithm from Steele, Lea & Flood,
/// "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014.)
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives independent child seeds from one master seed.
#[derive(Clone, Debug)]
pub struct SeedSeq {
    state: u64,
}

impl SeedSeq {
    /// Start a sequence from `master`.
    pub fn new(master: u64) -> Self {
        SeedSeq { state: master }
    }

    /// The next child seed. Consecutive calls yield decorrelated values
    /// even for adjacent master seeds.
    pub fn next_seed(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// A ready-to-use RNG stream seeded with the next child seed.
    pub fn next_rng(&mut self) -> SimRng {
        SimRng::seed_from(self.next_seed())
    }
}

/// The xoshiro256++ core (Blackman & Vigna, "Scrambled Linear
/// Pseudorandom Number Generators", 2019): 256 bits of state, top-tier
/// statistical quality, and a few shifts/rotates per draw. Implemented
/// in-repo so the kernel has zero external dependencies; the stream for a
/// given seed is fixed forever (platform-independent integer ops only).
#[derive(Clone, Debug)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Expand a 64-bit seed into the 256-bit state with SplitMix64, as the
    /// xoshiro authors recommend (avoids correlated low-entropy states and
    /// can never produce the forbidden all-zero state).
    fn from_seed(seed: u64) -> Self {
        let mut st = seed;
        Xoshiro256pp {
            s: [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ],
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A seeded random stream with the distribution helpers the traffic models
/// need. Wraps an in-repo xoshiro256++ core, reproducible for a fixed seed
/// across platforms and toolchains.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: Xoshiro256pp,
}

impl SimRng {
    /// Deterministically seed a stream.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256pp::from_seed(seed),
        }
    }

    /// A uniform draw in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform draw in `[0, n)`, debiased by Lemire's widening-multiply
    /// rejection method. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "SimRng::below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// An exponentially distributed span with the given mean, by inverse
    /// transform: `-mean · ln(1 - U)`.
    ///
    /// Both the paper's Poisson interarrival times and the ON/OFF sojourn
    /// times are exponential. `1 - U` (not `U`) keeps the argument of `ln`
    /// strictly positive since `U ∈ [0, 1)`.
    pub fn exponential(&mut self, mean: Duration) -> Duration {
        let u = self.unit_f64();
        let x = -(1.0 - u).ln() * mean.as_secs_f64();
        // lit-lint: allow(raw-time-arithmetic, "exponential sampling is float by nature; one rounding at the draw boundary, fail-loud on overflow")
        Duration::from_secs_f64(x)
    }

    /// A geometrically distributed count with the given mean, on support
    /// `{1, 2, 3, …}` (at least one trial).
    ///
    /// The paper approximates the number of packets per ON burst by a
    /// geometric with mean `a_ON / T`. With success probability
    /// `p = 1/mean`, we invert the CDF: `N = ⌈ln(1-U)/ln(1-p)⌉`.
    /// For `mean <= 1` this degenerates to the constant 1.
    pub fn geometric_min1(&mut self, mean: f64) -> u64 {
        if mean <= 1.0 {
            return 1;
        }
        let p = 1.0 / mean;
        let u = self.unit_f64();
        let n = ((1.0 - u).ln() / (1.0 - p).ln()).ceil();
        if n < 1.0 {
            1
        } else if n > u64::MAX as f64 {
            u64::MAX
        } else {
            n as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_seq_is_deterministic_and_decorrelated() {
        let mut a = SeedSeq::new(42);
        let mut b = SeedSeq::new(42);
        let s1 = a.next_seed();
        assert_eq!(s1, b.next_seed());
        let s2 = a.next_seed();
        assert_ne!(s1, s2);
        // adjacent masters give unrelated first children
        let c = SeedSeq::new(43).next_seed();
        assert_ne!(s1, c);
    }

    #[test]
    fn rng_reproducible() {
        let mut r1 = SimRng::seed_from(7);
        let mut r2 = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(1);
        let mean = Duration::from_ms(10);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| rng.exponential(mean).as_secs_f64()).sum();
        let avg_ms = total / n as f64 * 1e3;
        assert!((avg_ms - 10.0).abs() < 0.15, "avg={avg_ms}ms");
    }

    #[test]
    fn geometric_mean_is_close_and_min_one() {
        let mut rng = SimRng::seed_from(2);
        let n = 200_000;
        let mut total = 0u64;
        for _ in 0..n {
            let v = rng.geometric_min1(26.566); // a_ON/T from the paper
            assert!(v >= 1);
            total += v;
        }
        let avg = total as f64 / n as f64;
        assert!((avg - 26.566).abs() < 0.5, "avg={avg}");
        // degenerate case
        assert_eq!(rng.geometric_min1(0.5), 1);
    }

    #[test]
    fn below_in_range() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = SimRng::seed_from(4);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.25)).count();
        let rate = hits as f64 / 1e5;
        assert!((rate - 0.25).abs() < 0.01, "rate={rate}");
    }
}
