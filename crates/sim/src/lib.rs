//! # lit-sim — deterministic discrete-event simulation kernel
//!
//! The substrate beneath the Leave-in-Time reproduction: a minimal,
//! fully deterministic discrete-event core in the spirit of classic network
//! simulators (ns-2's scheduler, smoltcp's event-driven style), providing:
//!
//! * [`Time`] / [`Duration`] — picosecond fixed-point simulated time with
//!   exact-enough rate arithmetic ([`Duration::from_bits_at_rate`]);
//! * [`EventQueue`] — the future-event set, FIFO-stable among same-time
//!   events so runs are bit-reproducible, with a pluggable engine
//!   ([`EventBackend`]): binary heap by default, amortized-O(1)
//!   [`CalendarQueue`] ring or hierarchical [`TimerWheel`] opt-in;
//! * [`KeyedEntry`] — the shared reversed-`Ord` entry for FIFO-stable
//!   min-heaps throughout the workspace;
//! * [`SimRng`] / [`SeedSeq`] — per-component reproducible random streams.
//!
//! The kernel deliberately contains **no** networking concepts; nodes,
//! links, packets and scheduling disciplines live in `lit-net` and above.
//! This keeps the event core reusable and independently testable.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod calendar;
mod entry;
mod queue;
mod rng;
mod time;
mod wheel;

pub use calendar::CalendarQueue;
pub use entry::KeyedEntry;
pub use queue::{EventBackend, EventQueue};
pub use rng::{SeedSeq, SimRng};
pub use time::{Duration, Time, PS_PER_MS, PS_PER_NS, PS_PER_SEC, PS_PER_US};
pub use wheel::TimerWheel;
