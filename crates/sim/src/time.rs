//! Fixed-point simulated time.
//!
//! All simulated clocks in this workspace are expressed in **picoseconds**
//! held in a `u64`. Picosecond resolution was chosen because the paper's
//! evaluation multiplexes 424-bit ATM cells onto 1536 kbit/s (T1) links: one
//! cell transmission lasts 276 041 666.6̅ ps, so rounding to the nearest
//! picosecond accumulates less than 0.7 ps of error per transmission — far
//! below the millisecond scale at which the paper's bounds live — while a
//! `u64` still spans 213 days of simulated time, ample for the paper's
//! 5–10 minute runs.
//!
//! Two newtypes are provided, mirroring `std::time`:
//!
//! * [`Time`] — an absolute instant on the simulation clock (zero = start of
//!   the run);
//! * [`Duration`] — a non-negative span between instants.
//!
//! Arithmetic that could silently wrap is either checked (`checked_*`) or
//! panics in debug *and* release (`+`, `-` use `expect`), because a wrapped
//! clock would corrupt event ordering — better to fail loudly.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// Scale a raw unit count into picoseconds, panicking on overflow in
/// debug *and* release: a clock constructor that wrapped would corrupt
/// every deadline downstream, so it must fail loudly instead.
const fn scale_ps(count: u64, per: u64) -> u64 {
    match count.checked_mul(per) {
        Some(ps) => ps,
        None => panic!("clock constructor overflowed u64 picoseconds"),
    }
}

/// An absolute instant on the simulation clock, in picoseconds since the
/// start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A non-negative span of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as an "infinitely far away"
    /// sentinel (e.g. "no next event").
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(scale_ps(ns, PS_PER_NS))
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(scale_ps(us, PS_PER_US))
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Time(scale_ps(ms, PS_PER_MS))
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Time(scale_ps(s, PS_PER_SEC))
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in (fractional) seconds. Lossy; for reporting only.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Value in (fractional) milliseconds. Lossy; for reporting only.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Duration elapsed since `earlier`, or `None` if `earlier` is later
    /// than `self`.
    #[inline]
    pub fn checked_since(self, earlier: Time) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration)
    }

    /// Duration elapsed since `earlier`, saturating to zero.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// `self + d`, or `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: Duration) -> Option<Time> {
        self.0.checked_add(d.0).map(Time)
    }

    /// The later of the two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of the two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable span; an "infinite" sentinel.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Duration(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Duration(scale_ps(ns, PS_PER_NS))
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Duration(scale_ps(us, PS_PER_US))
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Duration(scale_ps(ms, PS_PER_MS))
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Duration(scale_ps(s, PS_PER_SEC))
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// picosecond. Panics on negative, non-finite, or out-of-range input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "Duration::from_secs_f64: invalid seconds {s}"
        );
        let ps = s * PS_PER_SEC as f64;
        assert!(ps <= u64::MAX as f64, "Duration::from_secs_f64: overflow");
        Duration(ps.round() as u64)
    }

    /// Construct from fractional milliseconds, rounding to the nearest
    /// picosecond.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// The time it takes to emit `bits` bits at `rate_bps` bits per second,
    /// rounded to the nearest picosecond.
    ///
    /// This is *the* primitive behind every rate computation in the
    /// workspace (`L/r`, `L/C`, token-bucket refill, …). The intermediate
    /// product is computed in `u128`, so there is no overflow for any
    /// realistic `bits`/`rate` combination, and the division error is at
    /// most half a picosecond.
    ///
    /// # Panics
    /// Panics if `rate_bps == 0`.
    #[inline]
    pub fn from_bits_at_rate(bits: u64, rate_bps: u64) -> Self {
        assert!(rate_bps > 0, "from_bits_at_rate: zero rate");
        let num = bits as u128 * PS_PER_SEC as u128;
        let ps = (num + rate_bps as u128 / 2) / rate_bps as u128;
        assert!(ps <= u64::MAX as u128, "from_bits_at_rate: overflow");
        Duration(ps as u64)
    }

    /// The number of whole bits a server of `rate_bps` emits in `self`
    /// (floor). Inverse of [`Duration::from_bits_at_rate`] up to rounding.
    #[inline]
    pub fn bits_at_rate(self, rate_bps: u64) -> u64 {
        (self.0 as u128 * rate_bps as u128 / PS_PER_SEC as u128) as u64
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in (fractional) seconds. Lossy; for reporting only.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Value in (fractional) milliseconds. Lossy; for reporting only.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// `self + d`, or `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: Duration) -> Option<Duration> {
        self.0.checked_add(d.0).map(Duration)
    }

    /// `self - d`, or `None` if `d > self`.
    #[inline]
    pub fn checked_sub(self, d: Duration) -> Option<Duration> {
        self.0.checked_sub(d.0).map(Duration)
    }

    /// `self - d`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, d: Duration) -> Duration {
        Duration(self.0.saturating_sub(d.0))
    }

    /// `self * k`, or `None` on overflow.
    #[inline]
    pub fn checked_mul(self, k: u64) -> Option<Duration> {
        self.0.checked_mul(k).map(Duration)
    }

    /// The larger of the two spans.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of the two spans.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(
            self.0
                .checked_add(rhs.0)
                .expect("Time + Duration overflowed"),
        )
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Duration) -> Time {
        Time(
            self.0
                .checked_sub(rhs.0)
                .expect("Time - Duration underflowed"),
        )
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    /// Elapsed span `self - rhs`. Panics if `rhs` is later than `self`;
    /// use [`Time::checked_since`] when the ordering is uncertain.
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0.checked_sub(rhs.0).expect("Time - Time underflowed"))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_add(rhs.0)
                .expect("Duration + Duration overflowed"),
        )
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("Duration - Duration underflowed"),
        )
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.checked_mul(rhs).expect("Duration * u64 overflowed"))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ps(self.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ps(self.0))
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ps(self.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ps(self.0))
    }
}

/// Render a picosecond count with a human-scale unit.
fn format_ps(ps: u64) -> String {
    if ps == 0 {
        "0s".to_string()
    } else if ps.is_multiple_of(PS_PER_SEC) {
        format!("{}s", ps / PS_PER_SEC)
    } else if ps >= PS_PER_SEC {
        format!("{:.6}s", ps as f64 / PS_PER_SEC as f64)
    } else if ps >= PS_PER_MS {
        format!("{:.6}ms", ps as f64 / PS_PER_MS as f64)
    } else if ps >= PS_PER_US {
        format!("{:.3}us", ps as f64 / PS_PER_US as f64)
    } else if ps >= PS_PER_NS {
        format!("{:.3}ns", ps as f64 / PS_PER_NS as f64)
    } else {
        format!("{ps}ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_secs(1), Time::from_ms(1000));
        assert_eq!(Time::from_ms(1), Time::from_us(1000));
        assert_eq!(Time::from_us(1), Time::from_ns(1000));
        assert_eq!(Time::from_ns(1), Time::from_ps(1000));
        assert_eq!(Duration::from_secs(2).as_ps(), 2 * PS_PER_SEC);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = Time::from_ms(5) + Duration::from_us(250);
        assert_eq!(t - Time::from_ms(5), Duration::from_us(250));
        assert_eq!(t - Duration::from_us(250), Time::from_ms(5));
    }

    #[test]
    fn atm_cell_on_t1_link() {
        // 424 bits at 1536 kbit/s = 276.0416̅ us.
        let d = Duration::from_bits_at_rate(424, 1_536_000);
        assert_eq!(d.as_ps(), 276_041_667); // rounded from ...666.67
                                            // And on a 32 kbit/s reservation: exactly 13.25 ms.
        let d = Duration::from_bits_at_rate(424, 32_000);
        assert_eq!(d, Duration::from_us(13_250));
    }

    #[test]
    fn bits_at_rate_inverts() {
        let d = Duration::from_bits_at_rate(1_000_000, 1_536_000);
        let bits = d.bits_at_rate(1_536_000);
        assert!((bits as i64 - 1_000_000).abs() <= 1, "bits={bits}");
    }

    #[test]
    #[should_panic(expected = "underflowed")]
    fn time_sub_panics_on_reversed_order() {
        let _ = Time::from_ms(1) - Time::from_ms(2);
    }

    #[test]
    fn checked_ops() {
        assert_eq!(Time::from_ms(1).checked_since(Time::from_ms(2)), None);
        assert_eq!(
            Time::from_ms(2).checked_since(Time::from_ms(1)),
            Some(Duration::from_ms(1))
        );
        assert_eq!(Time::MAX.checked_add(Duration::from_ps(1)), None);
        assert_eq!(Duration::MAX.checked_mul(2), None);
        assert_eq!(
            Duration::from_ms(3).saturating_sub(Duration::from_ms(5)),
            Duration::ZERO
        );
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(Duration::from_secs_f64(0.001), Duration::from_ms(1));
        assert_eq!(Duration::from_millis_f64(13.25), Duration::from_us(13_250));
    }

    #[test]
    fn display_units() {
        assert_eq!(Duration::from_secs(3).to_string(), "3s");
        assert_eq!(Duration::from_ps(5).to_string(), "5ps");
        assert_eq!(Duration::from_ms(2).to_string(), "2.000000ms");
    }

    #[test]
    fn duration_sum() {
        let total: Duration = [Duration::from_ms(1), Duration::from_us(500), Duration::ZERO]
            .into_iter()
            .sum();
        assert_eq!(total, Duration::from_us(1_500));
        let empty: Duration = std::iter::empty().sum();
        assert_eq!(empty, Duration::ZERO);
    }

    #[test]
    fn time_display_and_debug() {
        assert_eq!(Time::from_secs(2).to_string(), "2s");
        assert_eq!(format!("{:?}", Time::from_ms(1)), "t=1.000000ms");
        assert_eq!(Duration::from_us(3).to_string(), "3.000us");
        assert_eq!(Duration::from_ns(7).to_string(), "7.000ns");
    }

    #[test]
    fn min_max() {
        let a = Time::from_ms(1);
        let b = Time::from_ms(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = Duration::from_ms(1);
        let y = Duration::from_ms(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }
}
