//! The shared keyed-entry helper behind every FIFO-stable priority queue
//! in the workspace.
//!
//! Both the future-event set ([`crate::EventQueue`]) and `lit-net`'s
//! eligible-packet queue order their contents by `(key, push sequence)`:
//! the key carries the priority (a [`crate::Time`] or a scheduler key),
//! and the monotonically increasing sequence number makes same-key
//! entries pop in push order, which is what keeps simulation runs
//! bit-reproducible across refactors. They used to carry two copy-pasted
//! reversed-`Ord` entry structs; [`KeyedEntry`] is the single shared one.

use core::cmp::Ordering;

/// An entry of a **min**-ordered priority queue: payload `item` with
/// priority `key`, FIFO among equal keys via `seq`.
///
/// `Ord` is *reversed* (greater key ⇒ `Less`) so the entry can be dropped
/// straight into `std::collections::BinaryHeap` — a max-heap — and the
/// smallest `(key, seq)` pops first:
///
/// ```
/// use lit_sim::KeyedEntry;
/// use std::collections::BinaryHeap;
///
/// let mut h = BinaryHeap::new();
/// h.push(KeyedEntry { key: 2u64, seq: 0, item: "late" });
/// h.push(KeyedEntry { key: 1u64, seq: 1, item: "early" });
/// h.push(KeyedEntry { key: 1u64, seq: 2, item: "early-second" });
/// assert_eq!(h.pop().unwrap().item, "early");
/// assert_eq!(h.pop().unwrap().item, "early-second");
/// assert_eq!(h.pop().unwrap().item, "late");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct KeyedEntry<K, T> {
    /// The priority; smaller pops first.
    pub key: K,
    /// Push sequence number; among equal keys, smaller pops first.
    pub seq: u64,
    /// The payload.
    pub item: T,
}

impl<K: Ord, T> PartialEq for KeyedEntry<K, T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl<K: Ord, T> Eq for KeyedEntry<K, T> {}

impl<K: Ord, T> PartialOrd for KeyedEntry<K, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord, T> Ord for KeyedEntry<K, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so BinaryHeap (a max-heap) pops the smallest
        // (key, seq) first.
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn reversed_order_makes_a_min_heap() {
        let mut h = BinaryHeap::new();
        for (key, seq) in [(5u64, 0u64), (1, 1), (5, 2), (0, 3), (1, 4)] {
            h.push(KeyedEntry { key, seq, item: () });
        }
        let popped: Vec<(u64, u64)> = std::iter::from_fn(|| h.pop())
            .map(|e| (e.key, e.seq))
            .collect();
        assert_eq!(popped, vec![(0, 3), (1, 1), (1, 4), (5, 0), (5, 2)]);
    }

    #[test]
    fn eq_ignores_payload() {
        let a = KeyedEntry {
            key: 1u32,
            seq: 2,
            item: "x",
        };
        let b = KeyedEntry {
            key: 1u32,
            seq: 2,
            item: "y",
        };
        assert_eq!(a, b);
    }
}
