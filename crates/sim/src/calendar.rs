//! A ring-array **calendar queue** (Brown, CACM '88): the amortized-O(1)
//! priority queue the paper alludes to when it says Leave-in-Time "uses an
//! approximate sorted priority queue algorithm which runs in O(1) time".
//!
//! The structure is a ring of `N` buckets, each `width` key-units wide.
//! Bucket `b` holds keys whose *day* `key / width` satisfies
//! `day % N == b`, so the ring covers one *year* of `N * width` key-units
//! and wraps. Both `N` and `width` are powers of two, making every
//! day/bucket computation a shift-and-mask — no 128-bit division on the
//! hot path. Unlike the textbook layout (a linked list per bucket), each
//! bucket stores up to [`BUCKET_CAP`] entries **inline** in the ring
//! array, sorted by `(key, seq)`; the rare entries that do not fit spill
//! into a shared binary-heap side pocket. One push or pop therefore
//! touches a single ring cache line in the common case — the difference
//! between this and a pointer-chasing layout is ~3× at a million queued
//! events. Operations:
//!
//! * **push** drops the entry into its bucket's inline slots. If the
//!   bucket is full, the largest `(key, seq)` among {resident, new} goes
//!   to the overflow heap, so the inline slots always hold the bucket's
//!   smallest entries and the slot front stays the bucket minimum;
//! * **pop** scans forward from the cursor (a lower bound on every live
//!   ring key) and takes the first bucket front inside its current
//!   day-window — O(1) expected, because the next event of a well-sized
//!   calendar is at most a few day-windows ahead. The winner is then
//!   compared against the overflow-heap minimum; the smaller `(key, seq)`
//!   pops. If a whole year is scanned fruitlessly (all remaining events
//!   far in the future, e.g. a `Time::MAX` sentinel), pop falls back to a
//!   direct O(N) min-scan over bucket fronts — always correct — and jumps
//!   the cursor there so the *next* pop is O(1) again;
//! * the ring **resizes** lazily: it doubles when entries outnumber
//!   buckets and halves below a quarter entry per bucket, re-estimating
//!   `width` from the inter-decile key spread (deciles rather than
//!   min/max so far-future sentinels cannot wreck the estimate). Long
//!   scans and overflow traffic accrue *debt*; once the debt since the
//!   last rebuild exceeds the queue length, the ring rebuilds in place
//!   with a fresh width. A calendar whose width has drifted wrong — or
//!   was never estimated, right after construction — heals itself at
//!   amortized O(1) cost, and a hostile key distribution (everything in
//!   one bucket) degrades to the overflow heap's O(log n), never worse.
//!
//! Unlike the *approximate* calendar the paper sketches for line cards,
//! this one is **exact**: pops come out in strict `(key, seq)` order, FIFO
//! among equal keys, bit-identical to a binary heap. The approximation
//! knob lives one level up, in `lit-net`'s bucketed eligible queue, which
//! quantizes keys *before* they reach this ring.

use crate::entry::KeyedEntry;
use core::cell::Cell;
use std::collections::BinaryHeap;

/// Inline entries per ring bucket. Four slots keep a bucket within two
/// cache lines for small payloads while making overflow spills rare at
/// the steady-state occupancy of ≤ 1 entry per bucket.
const BUCKET_CAP: usize = 4;
/// Minimum (and initial) number of buckets; the ring never shrinks below.
const MIN_BUCKETS: usize = 16;
/// Shrink when `len * SHRINK_DIV < nbuckets` (growth doubles the ring
/// whenever `len > nbuckets`, so occupancy stays in (¼, 1]).
const SHRINK_DIV: usize = 4;
/// Scans this much longer than ideal are charged to the debt counter.
const FREE_SCAN: usize = 4;
/// Rebuild (re-estimating the width) when accrued debt exceeds
/// `max(len, DEBT_FLOOR)` — the rebuild then costs no more than the work
/// already wasted, keeping everything amortized O(1).
const DEBT_FLOOR: u64 = 64;

struct Slot<T> {
    key: u128,
    seq: u64,
    item: T,
}

/// One ring bucket: up to [`BUCKET_CAP`] slots, sorted by `(key, seq)`.
struct Bucket<T> {
    len: u8,
    slots: [Option<Slot<T>>; BUCKET_CAP],
}

impl<T> Bucket<T> {
    fn new() -> Self {
        Bucket {
            len: 0,
            slots: core::array::from_fn(|_| None),
        }
    }

    fn front(&self) -> Option<&Slot<T>> {
        self.slots[0].as_ref()
    }

    /// Insert keeping `(key, seq)` order; caller guarantees room.
    fn insert_sorted(&mut self, slot: Slot<T>) {
        let mut i = self.len as usize;
        while i > 0 {
            // lit-lint: allow(no-panic-hot-path, "structure invariant: i <= len <= BUCKET_CAP and every slot below len is Some")
            let prev = self.slots[i - 1].as_ref().expect("bucket: hole below len");
            if (prev.key, prev.seq) <= (slot.key, slot.seq) {
                break;
            }
            // lit-lint: allow(no-panic-hot-path, "caller guarantees len < BUCKET_CAP, so i and i - 1 are in bounds")
            self.slots[i] = self.slots[i - 1].take();
            i -= 1;
        }
        // lit-lint: allow(no-panic-hot-path, "caller guarantees len < BUCKET_CAP, so i is in bounds")
        self.slots[i] = Some(slot);
        self.len += 1;
    }

    fn pop_front(&mut self) -> Option<Slot<T>> {
        let out = self.slots[0].take()?;
        let l = self.len as usize;
        for i in 0..l - 1 {
            // lit-lint: allow(no-panic-hot-path, "structure invariant: i + 1 < len <= BUCKET_CAP")
            self.slots[i] = self.slots[i + 1].take();
        }
        self.len -= 1;
        Some(out)
    }

    /// Remove and return the largest entry; caller guarantees non-empty.
    fn pop_back(&mut self) -> Slot<T> {
        self.len -= 1;
        // lit-lint: allow(no-panic-hot-path, "structure invariant: the old len was <= BUCKET_CAP and every slot below it is Some")
        self.slots[self.len as usize]
            .take()
            // lit-lint: allow(no-panic-hot-path, "structure invariant: every slot below len is Some")
            .expect("bucket: hole below len")
    }
}

/// Where the cached minimum lives.
#[derive(Clone, Copy, PartialEq, Eq)]
enum MinLoc {
    Ring(usize),
    Overflow,
}

/// Cached location of the current minimum, so `peek` + `pop` (the
/// executor's idiom) costs one scan, not two.
#[derive(Clone, Copy)]
struct MinPos {
    loc: MinLoc,
    key: u128,
    seq: u64,
}

/// An exact min-priority queue over `u128` keys with amortized-O(1)
/// push/pop and FIFO order among equal keys.
///
/// ```
/// use lit_sim::CalendarQueue;
///
/// let mut q = CalendarQueue::new();
/// q.push(30, "c");
/// q.push(10, "a");
/// q.push(10, "b"); // same key: FIFO
/// assert_eq!(q.pop(), Some((10, "a")));
/// assert_eq!(q.pop(), Some((10, "b")));
/// assert_eq!(q.pop(), Some((30, "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct CalendarQueue<T> {
    buckets: Vec<Bucket<T>>,
    /// Entries that did not fit their bucket's inline slots. Always the
    /// *largest* entries of their bucket, but possibly smaller than other
    /// buckets' fronts, so the pop path compares against its minimum.
    overflow: BinaryHeap<KeyedEntry<u128, T>>,
    /// `width = 1 << width_shift` key-units per bucket.
    width_shift: u32,
    /// Total entries (ring + overflow).
    len: usize,
    /// Entries held in ring buckets.
    ring_len: usize,
    /// Monotone push counter; the FIFO tie-break among equal keys.
    next_seq: u64,
    /// Cursor: a lower bound on every live key (the last popped key, or
    /// the smallest pushed key since). Pop scans forward from here; a
    /// fruitless year-scan jumps it to the ring minimum, hence the Cell.
    cur: Cell<u128>,
    hint: Cell<Option<MinPos>>,
    /// `(key, seq)` of the overflow-heap minimum, mirrored here so the
    /// pop path does not dereference the heap's backing array (a likely
    /// cache miss) when the ring already holds the answer.
    ov_min: Option<(u128, u64)>,
    /// Wasted work (scan steps, overflow traffic) since the last rebuild.
    debt: Cell<u64>,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty calendar with the minimum bucket count.
    pub fn new() -> Self {
        Self::with_buckets(MIN_BUCKETS)
    }

    /// An empty calendar pre-sized for roughly `cap` concurrent entries.
    /// The width starts at 1 and is estimated from live keys at the first
    /// debt-triggered recalibration or occupancy-triggered resize.
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_buckets(cap.max(MIN_BUCKETS).next_power_of_two())
    }

    fn with_buckets(n: usize) -> Self {
        debug_assert!(n.is_power_of_two());
        CalendarQueue {
            buckets: (0..n).map(|_| Bucket::new()).collect(),
            overflow: BinaryHeap::new(),
            ov_min: None,
            width_shift: 0,
            len: 0,
            ring_len: 0,
            next_seq: 0,
            cur: Cell::new(0),
            hint: Cell::new(None),
            debt: Cell::new(0),
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the calendar is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total entries ever pushed (the next FIFO sequence number).
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }

    /// Drop every entry, keeping the ring geometry and the push counter
    /// (so FIFO sequence numbers keep increasing across a clear).
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            for s in &mut b.slots {
                *s = None;
            }
            b.len = 0;
        }
        self.overflow.clear();
        self.ov_min = None;
        self.len = 0;
        self.ring_len = 0;
        self.hint.set(None);
        self.debt.set(0);
    }

    fn bucket_of(&self, key: u128) -> usize {
        ((key >> self.width_shift) as usize) & (self.buckets.len() - 1)
    }

    /// Insert `key`; among equal keys, entries pop in push order.
    pub fn push(&mut self, key: u128, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.len == 0 || key < self.cur.get() {
            // Keep the invariant `cur <= every live key`; on an empty
            // calendar also jump the cursor forward so pop does not scan
            // up from a stale past.
            self.cur.set(key);
        }
        if let Some(h) = self.hint.get() {
            if key < h.key {
                self.hint.set(None);
            }
        }
        self.place(Slot { key, seq, item });
        self.len += 1;
        if self.len > self.buckets.len() {
            self.rebuild(self.buckets.len() * 2);
        } else if self.debt.get() >= (self.len as u64).max(DEBT_FLOOR) {
            self.rebuild(self.buckets.len());
        }
    }

    /// Put one slot into its ring bucket, spilling the bucket's largest
    /// entry to the overflow heap when the inline slots are full.
    fn place(&mut self, slot: Slot<T>) {
        let idx = self.bucket_of(slot.key);
        // lit-lint: allow(no-panic-hot-path, "bucket_of maps every key into 0..buckets.len()")
        let b = &mut self.buckets[idx];
        if (b.len as usize) < BUCKET_CAP {
            b.insert_sorted(slot);
            self.ring_len += 1;
            return;
        }
        // Overflow traffic is O(log n) work the width estimate should
        // have avoided; charge it so chronic spilling triggers a rebuild.
        self.debt.set(self.debt.get() + 1);
        // lit-lint: allow(no-panic-hot-path, "this branch runs only when the bucket is full, so its last slot is Some")
        let back = b.slots[BUCKET_CAP - 1]
            .as_ref()
            // lit-lint: allow(no-panic-hot-path, "this branch runs only when the bucket is full, so its last slot is Some")
            .expect("bucket: hole below len");
        let spill = if (slot.key, slot.seq) >= (back.key, back.seq) {
            slot
        } else {
            let evicted = b.pop_back();
            b.insert_sorted(slot);
            evicted
        };
        if self.ov_min.is_none_or(|m| (spill.key, spill.seq) < m) {
            self.ov_min = Some((spill.key, spill.seq));
        }
        self.overflow.push(KeyedEntry {
            key: spill.key,
            seq: spill.seq,
            item: spill.item,
        });
    }

    /// The smallest key, without removing it. Caches the found position,
    /// so the executor's peek-then-pop idiom scans once.
    pub fn peek_key(&self) -> Option<u128> {
        if let Some(h) = self.hint.get() {
            return Some(h.key);
        }
        let m = self.find_min();
        self.hint.set(m);
        m.map(|m| m.key)
    }

    /// The smallest-key entry (key and a borrow of its item), without
    /// removing it. Shares the cached position with `peek_key`/`pop`.
    pub fn peek(&self) -> Option<(u128, &T)> {
        let pos = match self.hint.get() {
            Some(h) => h,
            None => {
                let m = self.find_min()?;
                self.hint.set(Some(m));
                m
            }
        };
        match pos.loc {
            MinLoc::Ring(idx) => {
                let s = self.buckets.get(idx).and_then(|b| b.front())?;
                debug_assert_eq!((s.key, s.seq), (pos.key, pos.seq));
                Some((s.key, &s.item))
            }
            // The heap root IS the hinted entry: find_min compared the
            // ring winner against ov_min, the mirror of the heap's root.
            MinLoc::Overflow => {
                let e = self.overflow.peek()?;
                debug_assert_eq!((e.key, e.seq), (pos.key, pos.seq));
                Some((e.key, &e.item))
            }
        }
    }

    /// Remove and return the smallest-key entry (FIFO among equal keys).
    pub fn pop(&mut self) -> Option<(u128, T)> {
        let pos = match self.hint.take() {
            Some(h) => h,
            None => self.find_min()?,
        };
        let (key, item) = match pos.loc {
            MinLoc::Ring(idx) => {
                // lit-lint: allow(no-panic-hot-path, "hint invariant: find_min cached a position inside an occupied bucket, and every mutation clears the hint")
                let slot = self.buckets[idx]
                    .pop_front()
                    // lit-lint: allow(no-panic-hot-path, "hint invariant: find_min cached a position inside an occupied bucket, and every mutation clears the hint")
                    .expect("calendar: hinted bucket is empty");
                debug_assert_eq!((slot.key, slot.seq), (pos.key, pos.seq));
                self.ring_len -= 1;
                (slot.key, slot.item)
            }
            MinLoc::Overflow => {
                self.debt.set(self.debt.get() + 1);
                let e = self
                    .overflow
                    .pop()
                    // lit-lint: allow(no-panic-hot-path, "hint invariant: find_min saw a non-empty overflow heap, and every mutation clears the hint")
                    .expect("calendar: hinted overflow is empty");
                debug_assert_eq!((e.key, e.seq), (pos.key, pos.seq));
                self.ov_min = self.overflow.peek().map(|o| (o.key, o.seq));
                (e.key, e.item)
            }
        };
        self.len -= 1;
        self.cur.set(key);
        if self.buckets.len() > MIN_BUCKETS && self.len * SHRINK_DIV < self.buckets.len() {
            self.rebuild(self.buckets.len() / 2);
        } else if self.debt.get() >= (self.len as u64).max(DEBT_FLOOR) {
            // Scanning / spilling has wasted more work than a rebuild
            // costs: the width is wrong for the live keys. Re-estimate.
            self.rebuild(self.buckets.len());
        }
        Some((key, item))
    }

    /// Locate the minimum `(key, seq)` entry across ring and overflow.
    ///
    /// Ring buckets are sorted and hold their bucket's smallest entries
    /// (spills evict the largest), so each front is its bucket's minimum.
    /// Scan one year of day-windows from the cursor: the first front
    /// inside its window is the ring minimum (every smaller key would
    /// live in an already-scanned window of an earlier bucket, whose
    /// front proved that window empty). If a whole year is empty, fall
    /// back to a direct min over bucket fronts and jump the cursor there,
    /// so repeated pops of far-future keys stay O(1). The ring winner is
    /// then compared against the overflow minimum.
    fn find_min(&self) -> Option<MinPos> {
        if self.len == 0 {
            return None;
        }
        let mut best: Option<MinPos> = None;
        if self.ring_len > 0 {
            let n = self.buckets.len();
            let width = 1u128 << self.width_shift;
            let cur = self.cur.get();
            let start = self.bucket_of(cur);
            // Upper edge of the cursor's day-window: the next multiple of
            // `width` strictly above `cur` (shift-free because width is a
            // power of two), saturating for keys at the top of the space.
            let mut top = (cur | (width - 1)).saturating_add(1);
            let (wrap, first) = self.buckets.split_at(start);
            let mut step = 0usize;
            'scan: for half in [first, wrap] {
                for (off, b) in half.iter().enumerate() {
                    if let Some(front) = b.front() {
                        if front.key < top {
                            if step > FREE_SCAN {
                                self.debt.set(self.debt.get() + step as u64);
                            }
                            let bucket = if step < first.len() { start + off } else { off };
                            best = Some(MinPos {
                                loc: MinLoc::Ring(bucket),
                                key: front.key,
                                seq: front.seq,
                            });
                            break 'scan;
                        }
                    }
                    step += 1;
                    top = top.saturating_add(width);
                }
            }
            if best.is_none() {
                self.debt.set(self.debt.get() + n as u64);
                for (i, b) in self.buckets.iter().enumerate() {
                    if let Some(f) = b.front() {
                        if best.is_none_or(|m| (f.key, f.seq) < (m.key, m.seq)) {
                            best = Some(MinPos {
                                loc: MinLoc::Ring(i),
                                key: f.key,
                                seq: f.seq,
                            });
                        }
                    }
                }
                debug_assert!(best.is_some(), "calendar: ring_len > 0 but no front");
                if let Some(m) = best {
                    // Everything lives ≥ a year ahead; restart future
                    // scans at the minimum instead of re-walking the ring.
                    self.cur.set(m.key);
                }
            }
        }
        if let Some((ok, os)) = self.ov_min {
            if best.is_none_or(|m| (ok, os) < (m.key, m.seq)) {
                best = Some(MinPos {
                    loc: MinLoc::Overflow,
                    key: ok,
                    seq: os,
                });
            }
        }
        debug_assert!(best.is_some(), "calendar: len > 0 but nothing found");
        best
    }

    /// Re-bucket every entry (ring and overflow) into `new_n` buckets
    /// with a freshly estimated width.
    fn rebuild(&mut self, new_n: usize) {
        self.hint.set(None);
        self.debt.set(0);
        let mut slots: Vec<Slot<T>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            while let Some(s) = b.pop_front() {
                slots.push(s);
            }
        }
        slots.extend(self.overflow.drain().map(|e| Slot {
            key: e.key,
            seq: e.seq,
            item: e.item,
        }));
        self.ov_min = None;
        self.ring_len = 0;
        if let Some(shift) = Self::estimate_width_shift(&slots) {
            self.width_shift = shift;
        }
        if self.buckets.len() != new_n {
            self.buckets = (0..new_n).map(|_| Bucket::new()).collect();
        }
        for s in slots {
            self.place(s);
        }
        // `place` may have re-charged debt for entries that legitimately
        // spill (concentrated keys); start the next period clean so one
        // rebuild cannot immediately trigger another.
        self.debt.set(0);
    }

    /// Width estimate: the mean key gap over the inter-decile range,
    /// rounded up to a power of two, so each current-year bucket holds
    /// O(1) entries and outliers (far-future sentinels) cannot stretch
    /// the year. `None` when there are too few entries to estimate.
    fn estimate_width_shift(slots: &[Slot<T>]) -> Option<u32> {
        if slots.len() < 2 {
            return None;
        }
        let mut keys: Vec<u128> = slots.iter().map(|s| s.key).collect();
        let lo_i = keys.len() / 10;
        let hi_i = keys.len() - 1 - keys.len() / 10;
        let (_, &mut lo, _) = keys.select_nth_unstable(lo_i);
        let (_, &mut hi, _) = keys.select_nth_unstable(hi_i);
        let gaps = (hi_i - lo_i).max(1) as u128;
        let width = ((hi - lo) / gaps).max(1);
        // ceil(log2): the power-of-two width in [mean gap, 2 * mean gap).
        Some((128 - (width - 1).leading_zeros()).min(127))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order() {
        let mut q = CalendarQueue::new();
        for key in [50u128, 10, 40, 20, 30, 0] {
            q.push(key, key);
        }
        let mut out = Vec::new();
        while let Some((k, v)) = q.pop() {
            assert_eq!(k, v);
            out.push(k);
        }
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
        assert!(q.is_empty());
        assert_eq!(q.pushed(), 6);
    }

    #[test]
    fn fifo_among_equal_keys() {
        let mut q = CalendarQueue::new();
        q.push(7, "first");
        q.push(7, "second");
        q.push(3, "zeroth");
        q.push(7, "third");
        assert_eq!(q.pop(), Some((3, "zeroth")));
        assert_eq!(q.pop(), Some((7, "first")));
        assert_eq!(q.pop(), Some((7, "second")));
        assert_eq!(q.pop(), Some((7, "third")));
    }

    #[test]
    fn fifo_survives_overflow_spills() {
        // > BUCKET_CAP entries with the same key force spills to the
        // overflow heap; pop order must stay strict push order.
        let mut q = CalendarQueue::new();
        for i in 0..100u64 {
            q.push(42, i);
        }
        for i in 0..100u64 {
            assert_eq!(q.pop(), Some((42, i)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_with_backdated_keys() {
        let mut q = CalendarQueue::new();
        q.push(1_000, ());
        q.push(2_000, ());
        assert_eq!(q.pop().unwrap().0, 1_000);
        // Push a key *behind* the cursor but ahead of the popped key — the
        // cursor must move back so the scan still finds it.
        q.push(1_500, ());
        q.push(1_200, ());
        assert_eq!(q.pop().unwrap().0, 1_200);
        assert_eq!(q.pop().unwrap().0, 1_500);
        assert_eq!(q.pop().unwrap().0, 2_000);
    }

    #[test]
    fn survives_resize_cycles() {
        let mut q = CalendarQueue::new();
        // Grow well past several doublings, then drain to force shrinks.
        let n = 10_000u128;
        for i in 0..n {
            q.push((i * 7919) % 100_000, i);
        }
        assert_eq!(q.len(), n as usize);
        let mut last = 0u128;
        let mut popped = 0usize;
        while let Some((k, _)) = q.pop() {
            assert!(k >= last, "out of order after resize: {k} < {last}");
            last = k;
            popped += 1;
        }
        assert_eq!(popped, n as usize);
    }

    #[test]
    fn far_future_sentinels_are_handled() {
        let mut q = CalendarQueue::new();
        q.push(u64::MAX as u128, "sentinel");
        q.push(u64::MAX as u128, "sentinel2");
        for i in 0..100u128 {
            q.push(i * 1_000, "near");
        }
        for i in 0..100u128 {
            assert_eq!(q.pop(), Some((i * 1_000, "near")));
        }
        assert_eq!(q.pop(), Some((u64::MAX as u128, "sentinel")));
        assert_eq!(q.pop(), Some((u64::MAX as u128, "sentinel2")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn clear_keeps_seq_counter() {
        let mut q = CalendarQueue::new();
        q.push(5, ());
        q.push(6, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pushed(), 2);
        q.push(1, ());
        assert_eq!(q.pushed(), 3);
        assert_eq!(q.pop(), Some((1, ())));
    }

    #[test]
    fn hold_model_stays_sorted() {
        // The classic calendar workload: steady-state size, keys drift
        // upward. Exercises the day-window scan and width estimation.
        let mut q = CalendarQueue::new();
        let mut state = 0x1995_u64;
        let mut lcg = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut now = 0u128;
        for i in 0..1_000u128 {
            q.push(i * 100 + (lcg() % 100) as u128, ());
        }
        for _ in 0..50_000 {
            let (k, _) = q.pop().unwrap();
            assert!(k >= now, "hold model went backwards");
            now = k;
            q.push(now + 1 + (lcg() % 200_000) as u128, ());
        }
        assert_eq!(q.len(), 1_000);
    }
}
