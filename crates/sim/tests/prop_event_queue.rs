//! Property tests: the event queue against a reference model.
//!
//! The model is a sorted `Vec<(Time, push_index, payload)>`; after any
//! interleaving of pushes and pops, the queue must agree with the model
//! exactly — that is the determinism contract everything above relies on.

#![forbid(unsafe_code)]

use lit_prop::{check, Gen};
use lit_sim::{Duration, EventBackend, EventQueue, SimRng, Time};

/// An operation against the queue.
#[derive(Clone, Debug)]
enum Op {
    Push(u64), // time in microseconds
    Pop,
}

fn gen_ops(g: &mut Gen) -> Vec<Op> {
    let n = g.size(1, 400);
    (0..n)
        .map(|_| match g.weighted(&[3, 1]) {
            0 => Op::Push(g.below(1_000_000)),
            _ => Op::Pop,
        })
        .collect()
}

/// Push times for the backend-agreement test: a narrow band (to force
/// same-instant FIFO ties), a wide band, and far-future sentinels within
/// a few ps of `Time::MAX` (the "never" markers long-running executors
/// park in the queue).
fn gen_time(g: &mut Gen) -> Time {
    match g.weighted(&[4, 3, 1]) {
        0 => Time::from_ps(g.below(64) * 1_000),
        1 => Time::from_us(g.below(1_000_000)),
        _ => Time::from_ps(u64::MAX - g.below(4)),
    }
}

/// `Some(t)` = push at `t`, `None` = pop.
fn gen_backend_ops(g: &mut Gen) -> Vec<Option<Time>> {
    let n = g.size(1, 400);
    (0..n)
        .map(|_| match g.weighted(&[3, 1]) {
            0 => Some(gen_time(g)),
            _ => None,
        })
        .collect()
}

#[test]
fn queue_matches_sorted_reference() {
    check("queue_matches_sorted_reference", |g| {
        let ops = gen_ops(g);
        let mut q = EventQueue::new();
        // Reference: a Vec kept sorted by (time, insertion order).
        let mut model: Vec<(Time, u64, u64)> = Vec::new();
        let mut push_idx = 0u64;
        for op in ops {
            match op {
                Op::Push(us) => {
                    let t = Time::from_us(us);
                    q.push(t, push_idx);
                    model.push((t, push_idx, push_idx));
                    push_idx += 1;
                }
                Op::Pop => {
                    model.sort_by_key(|&(t, i, _)| (t, i));
                    let want = if model.is_empty() {
                        None
                    } else {
                        let (t, _, v) = model.remove(0);
                        Some((t, v))
                    };
                    assert_eq!(q.pop(), want);
                }
            }
            assert_eq!(q.len(), model.len());
            model.sort_by_key(|&(t, i, _)| (t, i));
            assert_eq!(q.peek_time(), model.first().map(|&(t, _, _)| t));
        }
        // Drain: remaining elements come out in exact model order.
        model.sort_by_key(|&(t, i, _)| (t, i));
        for &(t, _, v) in &model {
            assert_eq!(q.pop(), Some((t, v)));
        }
        assert!(q.is_empty());
    });
}

#[test]
fn calendar_and_heap_backends_agree() {
    check("calendar_and_heap_backends_agree", |g| {
        // The calendar ring is a pure engine swap: for ANY interleaving of
        // pushes and pops — including same-instant FIFO ties and sentinel
        // times at the far end of the clock — it must pop the exact
        // (time, payload) sequence the binary heap pops.
        let ops = gen_backend_ops(g);
        let mut heap = EventQueue::with_backend(EventBackend::Heap);
        let mut cal = EventQueue::with_backend(EventBackend::Calendar);
        let mut idx = 0u64;
        for op in ops {
            match op {
                Some(t) => {
                    heap.push(t, idx);
                    cal.push(t, idx);
                    idx += 1;
                }
                None => {
                    assert_eq!(heap.pop(), cal.pop());
                }
            }
            assert_eq!(heap.len(), cal.len());
            assert_eq!(heap.peek_time(), cal.peek_time());
        }
        while !heap.is_empty() {
            assert_eq!(heap.pop(), cal.pop());
        }
        assert_eq!(cal.pop(), None);
    });
}

#[test]
fn wheel_agrees_with_heap_and_calendar() {
    check("wheel_agrees_with_heap_and_calendar", |g| {
        // Same contract as above for the hierarchical timer wheel: all
        // three engines must pop the identical (time, payload) sequence,
        // under FIFO ties and near-`Time::MAX` sentinels alike.
        let ops = gen_backend_ops(g);
        let mut heap = EventQueue::with_backend(EventBackend::Heap);
        let mut cal = EventQueue::with_backend(EventBackend::Calendar);
        let mut wheel = EventQueue::with_backend(EventBackend::Wheel);
        let mut idx = 0u64;
        for op in ops {
            match op {
                Some(t) => {
                    heap.push(t, idx);
                    cal.push(t, idx);
                    wheel.push(t, idx);
                    idx += 1;
                }
                None => {
                    let h = heap.pop();
                    assert_eq!(h, cal.pop());
                    assert_eq!(h, wheel.pop());
                }
            }
            assert_eq!(heap.len(), wheel.len());
            assert_eq!(heap.peek_time(), wheel.peek_time());
        }
        while !heap.is_empty() {
            let h = heap.pop();
            assert_eq!(h, cal.pop());
            assert_eq!(h, wheel.pop());
        }
        assert_eq!(wheel.pop(), None);
    });
}

#[test]
fn wheel_horizon_edge_cases() {
    check("wheel_horizon_edge_cases", |g| {
        // Cascades across every wheel level: pairs of keys straddling the
        // top of the key space, plus a dense tie cluster near the cursor.
        // The wheel must release them in exact (time, seq) order even when
        // the cursor has to jump from ~0 to within a few ps of u64::MAX.
        let mut wheel = EventQueue::with_backend(EventBackend::Wheel);
        let mut heap = EventQueue::with_backend(EventBackend::Heap);
        let near = g.below(64);
        let sentinels = [
            Time::from_ps(u64::MAX),
            Time::from_ps(u64::MAX - g.below(4)),
            Time::from_ps(u64::MAX - 64),
            Time::from_ps((u64::MAX >> 1) + g.below(1024)),
        ];
        let mut idx = 0u64;
        for &t in &sentinels {
            wheel.push(t, idx);
            heap.push(t, idx);
            idx += 1;
        }
        for _ in 0..g.size(1, 64) {
            let t = Time::from_ps(near + g.below(8));
            wheel.push(t, idx);
            heap.push(t, idx);
            idx += 1;
        }
        while !heap.is_empty() {
            assert_eq!(wheel.pop(), heap.pop());
        }
        assert_eq!(wheel.pop(), None);
    });
}

#[test]
fn duration_rate_roundtrip() {
    check("duration_rate_roundtrip", |g| {
        let bits = g.range(1, 10_000_000);
        let rate = g.range(1_000, 10_000_000_000);
        // from_bits_at_rate then bits_at_rate loses at most one bit.
        let d = Duration::from_bits_at_rate(bits, rate);
        let back = d.bits_at_rate(rate);
        assert!(back.abs_diff(bits) <= 1, "bits={bits} back={back}");
    });
}

#[test]
fn duration_rate_is_monotone() {
    check("duration_rate_is_monotone", |g| {
        let a = g.below(1_000_000);
        let b = g.below(1_000_000);
        let rate = g.range(1_000, 1_000_000_000);
        let (lo, hi) = (a.min(b), a.max(b));
        assert!(Duration::from_bits_at_rate(lo, rate) <= Duration::from_bits_at_rate(hi, rate));
    });
}

#[test]
fn rng_streams_reproducible() {
    check("rng_streams_reproducible", |g| {
        let seed = g.u64();
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    });
}

#[test]
fn exponential_is_nonnegative_finite() {
    check("exponential_is_nonnegative_finite", |g| {
        let seed = g.u64();
        let mean_us = g.range(1, 10_000_000);
        let mut rng = SimRng::seed_from(seed);
        let mean = Duration::from_us(mean_us);
        for _ in 0..64 {
            let x = rng.exponential(mean);
            // No panic and representable: that is the contract (the
            // draw itself is unbounded above but astronomically unlikely
            // to overflow f64→u64 at these means).
            assert!(x >= Duration::ZERO);
        }
    });
}
