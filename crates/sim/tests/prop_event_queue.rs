//! Property tests: the event queue against a reference model.
//!
//! The model is a sorted `Vec<(Time, push_index, payload)>`; after any
//! interleaving of pushes and pops, the queue must agree with the model
//! exactly — that is the determinism contract everything above relies on.

use lit_sim::{Duration, EventBackend, EventQueue, SimRng, Time};
use proptest::prelude::*;

/// An operation against the queue.
#[derive(Clone, Debug)]
enum Op {
    Push(u64), // time in microseconds
    Pop,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0u64..1_000_000).prop_map(Op::Push),
            1 => Just(Op::Pop),
        ],
        1..400,
    )
}

/// Push times for the backend-agreement test: a narrow band (to force
/// same-instant FIFO ties), a wide band, and far-future sentinels within
/// a few ps of `Time::MAX` (the "never" markers long-running executors
/// park in the queue).
fn arb_times() -> impl Strategy<Value = Time> {
    prop_oneof![
        4 => (0u64..64).prop_map(|ps| Time::from_ps(ps * 1_000)),
        3 => (0u64..1_000_000).prop_map(Time::from_us),
        1 => (0u64..4).prop_map(|off| Time::from_ps(u64::MAX - off)),
    ]
}

fn arb_backend_ops() -> impl Strategy<Value = Vec<Option<Time>>> {
    // `Some(t)` = push at `t`, `None` = pop.
    prop::collection::vec(
        prop_oneof![
            3 => arb_times().prop_map(Some),
            1 => Just(None),
        ],
        1..400,
    )
}

proptest! {
    #[test]
    fn queue_matches_sorted_reference(ops in arb_ops()) {
        let mut q = EventQueue::new();
        // Reference: a Vec kept sorted by (time, insertion order).
        let mut model: Vec<(Time, u64, u64)> = Vec::new();
        let mut push_idx = 0u64;
        for op in ops {
            match op {
                Op::Push(us) => {
                    let t = Time::from_us(us);
                    q.push(t, push_idx);
                    model.push((t, push_idx, push_idx));
                    push_idx += 1;
                }
                Op::Pop => {
                    model.sort_by_key(|&(t, i, _)| (t, i));
                    let want = if model.is_empty() {
                        None
                    } else {
                        let (t, _, v) = model.remove(0);
                        Some((t, v))
                    };
                    prop_assert_eq!(q.pop(), want);
                }
            }
            prop_assert_eq!(q.len(), model.len());
            model.sort_by_key(|&(t, i, _)| (t, i));
            prop_assert_eq!(q.peek_time(), model.first().map(|&(t, _, _)| t));
        }
        // Drain: remaining elements come out in exact model order.
        model.sort_by_key(|&(t, i, _)| (t, i));
        for &(t, _, v) in &model {
            prop_assert_eq!(q.pop(), Some((t, v)));
        }
        prop_assert!(q.is_empty());
    }

    #[test]
    fn calendar_and_heap_backends_agree(ops in arb_backend_ops()) {
        // The calendar ring is a pure engine swap: for ANY interleaving of
        // pushes and pops — including same-instant FIFO ties and sentinel
        // times at the far end of the clock — it must pop the exact
        // (time, payload) sequence the binary heap pops.
        let mut heap = EventQueue::with_backend(EventBackend::Heap);
        let mut cal = EventQueue::with_backend(EventBackend::Calendar);
        let mut idx = 0u64;
        for op in ops {
            match op {
                Some(t) => {
                    heap.push(t, idx);
                    cal.push(t, idx);
                    idx += 1;
                }
                None => {
                    prop_assert_eq!(heap.pop(), cal.pop());
                }
            }
            prop_assert_eq!(heap.len(), cal.len());
            prop_assert_eq!(heap.peek_time(), cal.peek_time());
        }
        while !heap.is_empty() {
            prop_assert_eq!(heap.pop(), cal.pop());
        }
        prop_assert_eq!(cal.pop(), None);
    }

    #[test]
    fn duration_rate_roundtrip(bits in 1u64..10_000_000, rate in 1_000u64..10_000_000_000) {
        // from_bits_at_rate then bits_at_rate loses at most one bit.
        let d = Duration::from_bits_at_rate(bits, rate);
        let back = d.bits_at_rate(rate);
        prop_assert!(back.abs_diff(bits) <= 1, "bits={bits} back={back}");
    }

    #[test]
    fn duration_rate_is_monotone(
        a in 0u64..1_000_000, b in 0u64..1_000_000, rate in 1_000u64..1_000_000_000
    ) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(
            Duration::from_bits_at_rate(lo, rate) <= Duration::from_bits_at_rate(hi, rate)
        );
    }

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn exponential_is_nonnegative_finite(seed in any::<u64>(), mean_us in 1u64..10_000_000) {
        let mut rng = SimRng::seed_from(seed);
        let mean = Duration::from_us(mean_us);
        for _ in 0..64 {
            let x = rng.exponential(mean);
            // No panic and representable: that is the contract (the
            // draw itself is unbounded above but astronomically unlikely
            // to overflow f64→u64 at these means).
            prop_assert!(x >= Duration::ZERO);
        }
    }
}
