//! Property tests for the fixed-point clock types near `u64::MAX`.
//!
//! The contract lit-lint's clock rules lean on: arithmetic on `Time`/
//! `Duration` either reports overflow (`checked_*` returns `None`) or
//! fails loudly (constructors and `+`/`-` panic), in debug *and* release.
//! A silently wrapped clock would corrupt deadline order, so these
//! properties drive inputs within a few thousand picoseconds of the
//! representable ceiling and assert nothing wraps.

#![forbid(unsafe_code)]

use lit_prop::{check, Gen};
use lit_sim::{Duration, Time, PS_PER_MS, PS_PER_NS, PS_PER_SEC, PS_PER_US};
use std::panic::catch_unwind;

/// A magnitude mix that hammers the overflow boundary: mostly values
/// within 4096 of `u64::MAX`, some near `MAX / unit-scale` edges, some
/// ordinary small counts as a control group.
fn gen_count(g: &mut Gen) -> u64 {
    match g.weighted(&[4, 3, 2]) {
        0 => u64::MAX - g.below(4096),
        1 => {
            let per = *g.pick(&[PS_PER_NS, PS_PER_US, PS_PER_MS, PS_PER_SEC]);
            let edge = u64::MAX / per;
            // Straddle the exact largest representable count for the unit.
            (edge - 2).saturating_add(g.below(5))
        }
        _ => g.below(1 << 20),
    }
}

/// Every multiplying constructor must agree with u128 math: return the
/// exact picosecond value when it fits in u64, panic when it does not.
#[test]
fn constructors_near_max_fail_loudly() {
    // Constructor overflow panics are the *expected* outcome for half the
    // generated inputs; silence the per-panic backtrace spam. (All panic
    // assertions live in this one test fn, so no other test in this
    // binary races on the process-global hook.)
    std::panic::set_hook(Box::new(|_| {}));
    check("constructors_near_max_fail_loudly", |g| {
        let n = gen_count(g);
        type Ctor = fn(u64) -> u64;
        let cases: [(u64, Ctor); 4] = [
            (PS_PER_NS, |k| Duration::from_ns(k).as_ps()),
            (PS_PER_US, |k| Duration::from_us(k).as_ps()),
            (PS_PER_MS, |k| Duration::from_ms(k).as_ps()),
            (PS_PER_SEC, |k| Duration::from_secs(k).as_ps()),
        ];
        for (per, ctor) in cases {
            let wide = n as u128 * per as u128;
            let got = catch_unwind(move || ctor(n));
            if wide <= u64::MAX as u128 {
                assert_eq!(got.ok(), Some(wide as u64), "unit {per}: wrong product");
            } else {
                assert!(
                    got.is_err(),
                    "unit {per}: count {n} wrapped instead of panicking"
                );
            }
        }
        // Time's constructors share the same scaling helper; spot-check one.
        let wide = n as u128 * PS_PER_MS as u128;
        let got = catch_unwind(move || Time::from_ms(n).as_ps());
        assert_eq!(got.ok(), (wide <= u64::MAX as u128).then_some(wide as u64));
    });
}

/// `checked_add`/`checked_mul`/`checked_since` must agree with u128 math
/// bit-for-bit, and the panicking operators must panic exactly when the
/// checked form reports `None`.
#[test]
fn checked_ops_match_u128_oracle() {
    std::panic::set_hook(Box::new(|_| {}));
    check("checked_ops_match_u128_oracle", |g| {
        let a = gen_count(g);
        let b = gen_count(g);
        let t = Time::from_ps(a);
        let d = Duration::from_ps(b);

        let sum = a as u128 + b as u128;
        let fits = sum <= u64::MAX as u128;
        assert_eq!(
            t.checked_add(d).map(Time::as_ps),
            fits.then_some(sum as u64),
            "checked_add disagrees with u128 for {a} + {b}"
        );
        assert_eq!(
            catch_unwind(move || (t + d).as_ps()).ok(),
            fits.then_some(sum as u64),
            "`+` must panic exactly when checked_add is None"
        );

        let k = g.below(8);
        let prod = b as u128 * k as u128;
        let fits = prod <= u64::MAX as u128;
        assert_eq!(
            d.checked_mul(k).map(Duration::as_ps),
            fits.then_some(prod as u64),
            "checked_mul disagrees with u128 for {b} * {k}"
        );

        // Subtraction in both directions: checked reports, saturating clamps.
        let u = Time::from_ps(b);
        if a >= b {
            assert_eq!(t.checked_since(u), Some(Duration::from_ps(a - b)));
        } else {
            assert_eq!(t.checked_since(u), None);
            assert_eq!(t.saturating_since(u), Duration::ZERO);
        }
    });
}
