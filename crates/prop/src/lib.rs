//! # lit-prop — dependency-free property-testing harness
//!
//! The workspace's randomized tests used to run on an external property
//! -testing crate; this crate replaces it with a minimal in-repo harness so
//! the build has zero external dependencies (the repo must build in a fully
//! offline container). The model is deliberately simple:
//!
//! * a test is a closure over a seeded [`Gen`] that draws its inputs and
//!   `assert!`s its property;
//! * [`check`] runs it for [`cases`] independently seeded cases
//!   (`PROPTEST_CASES` env var, default 24 — CI's nightly job sets 256);
//! * a failing case prints its seed and is replayed exactly with
//!   `LIT_PROP_SEED=<seed>`;
//! * [`check_with`] pins regression seeds that run before the random
//!   cases on every invocation, so past failures stay covered forever.
//!
//! There is no shrinking: generators here are parametric (sizes drawn
//! first), so re-running a failing seed under a debugger is cheap, and the
//! differential fuzz harness (`lit-repro`) does its own domain-aware
//! minimization.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// SplitMix64 step (Steele, Lea & Flood, OOPSLA 2014): the same mixer the
/// simulator uses for seed derivation. Statistically strong enough for test
/// -input generation and trivially reproducible from a single `u64`.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded input generator handed to each property case.
#[derive(Clone, Debug)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// A generator whose whole draw sequence is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Gen { state: seed }
    }

    /// A uniform `u64`.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// A uniform draw in `[0, n)` (Lemire's unbiased method). Panics if
    /// `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Gen::below(0)");
        let mut x = self.u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform draw in the half-open range `[lo, hi)`. Panics if
    /// `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Gen::range: empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn size(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A fair coin.
    #[inline]
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// A uniformly chosen element of `xs`. Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.size(0, xs.len())]
    }

    /// An index into `weights`, chosen with probability proportional to its
    /// weight (the `prop_oneof![w => ...]` replacement). Panics if all
    /// weights are zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        assert!(total > 0, "Gen::weighted: zero total weight");
        let mut x = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if x < w {
                return i;
            }
            x -= w;
        }
        unreachable!("weighted draw out of range")
    }
}

/// Number of random cases per property: the `PROPTEST_CASES` environment
/// variable, defaulting to 24 (the workspace's historical local count; the
/// nightly CI job sets 256).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(24)
}

/// FNV-1a over the property name, so distinct properties explore distinct
/// seed sequences even inside one test binary.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `property` for [`cases`] seeded cases. A panic inside the closure
/// fails the test after printing the case seed; replay that single case
/// with `LIT_PROP_SEED=<seed> cargo test <name>`.
pub fn check(name: &str, property: impl Fn(&mut Gen)) {
    check_with(name, &[], property)
}

/// Like [`check`], but first replays `regression_seeds` — seeds of past
/// failures pinned so they are re-checked on every run regardless of the
/// random schedule.
pub fn check_with(name: &str, regression_seeds: &[u64], property: impl Fn(&mut Gen)) {
    if let Ok(v) = std::env::var("LIT_PROP_SEED") {
        let v = v.trim();
        let seed = if let Some(hex) = v.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).expect("LIT_PROP_SEED: bad hex")
        } else {
            v.parse().expect("LIT_PROP_SEED: bad integer")
        };
        run_case(name, seed, &property);
        return;
    }
    for &seed in regression_seeds {
        run_case(name, seed, &property);
    }
    let mut state = name_hash(name) ^ 0x5EED_1995_0000_0000;
    for _ in 0..cases() {
        let seed = splitmix64(&mut state);
        run_case(name, seed, &property);
    }
}

fn run_case(name: &str, seed: u64, property: &impl Fn(&mut Gen)) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut g = Gen::new(seed);
        property(&mut g);
    }));
    if let Err(payload) = result {
        eprintln!(
            "property `{name}` failed for seed {seed:#018x}; replay with LIT_PROP_SEED={seed}"
        );
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_is_deterministic_per_seed() {
        let mut a = Gen::new(7);
        let mut b = Gen::new(7);
        for _ in 0..64 {
            assert_eq!(a.u64(), b.u64());
        }
        assert_ne!(Gen::new(7).u64(), Gen::new(8).u64());
    }

    #[test]
    fn below_and_range_stay_in_bounds() {
        let mut g = Gen::new(1);
        for _ in 0..10_000 {
            assert!(g.below(10) < 10);
            let x = g.range(5, 9);
            assert!((5..9).contains(&x));
        }
        assert_eq!(g.below(1), 0);
    }

    #[test]
    fn f64_unit_interval() {
        let mut g = Gen::new(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = g.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut g = Gen::new(3);
        for _ in 0..1000 {
            let i = g.weighted(&[0, 3, 0, 1]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn pick_covers_all_elements_eventually() {
        let mut g = Gen::new(4);
        let xs = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let v = *g.pick(&xs);
            seen[(v / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn check_runs_and_reports_failures() {
        check("always-true", |g| {
            let _ = g.u64();
        });
        let failed = catch_unwind(AssertUnwindSafe(|| {
            check("always-false", |_| panic!("expected failure"));
        }));
        assert!(failed.is_err());
    }

    #[test]
    fn regression_seeds_run_first() {
        use std::cell::RefCell;
        let seen: RefCell<Vec<u64>> = RefCell::new(Vec::new());
        check_with("record-seeds", &[42, 43], |g| {
            // The first draw of Gen::new(s) is a pure function of s, so the
            // first two recorded values must come from seeds 42 and 43.
            seen.borrow_mut().push(g.u64());
        });
        let seen = seen.into_inner();
        assert_eq!(seen[0], Gen::new(42).u64());
        assert_eq!(seen[1], Gen::new(43).u64());
        assert_eq!(seen.len() as u64, 2 + cases());
    }
}
