//! # lit-analysis — queueing analysis and measurement utilities
//!
//! * [`Md1`] — exact M/D/1 waiting/sojourn-time distribution
//!   (Erlang/Crommelin), the analytic reference-server model behind the
//!   paper's Figures 9–11;
//! * [`DurationHistogram`] — fixed-bin histograms with exact extrema, for
//!   delay distributions, CCDFs and jitter measurements;
//! * [`OnlineStats`] / [`BusyFraction`] — streaming moments and link
//!   utilization;
//! * [`BatchMeans`] — batch-means confidence intervals for steady-state
//!   simulation output (autocorrelation-robust).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod batch;
mod hist;
mod md1;
mod stats;

pub use batch::BatchMeans;
pub use hist::DurationHistogram;
pub use md1::Md1;
pub use stats::{BusyFraction, OnlineStats};
