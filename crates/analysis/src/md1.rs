//! Exact M/D/1 queueing analysis.
//!
//! The reference server of a Poisson session is an M/D/1 queue (Poisson
//! arrivals, deterministic service `D = L/r`, one server). The paper's
//! Figures 9–11 compare simulated end-to-end delay CCDFs against an
//! analytic upper bound obtained by shifting the *reference server's* delay
//! distribution (ineq. 16), "calculated following the results presented in
//! [16, 21]" — i.e. the classical Erlang/Crommelin waiting-time formula,
//! which we implement here:
//!
//! ```text
//! P(W ≤ t) = (1 − ρ) · Σ_{k=0}^{⌊t/D⌋} (−1)^k e^{λ(t−kD)} (λ(t−kD))^k / k!
//! ```
//!
//! The series is alternating with terms growing like `e^{λt}`, so the
//! cancellation costs roughly `λt / ln 10` decimal digits; direct `f64`
//! evaluation is accurate up to `λ·t ≈ 30`, which covers every operating
//! point in the paper's figures. Beyond that the implementation switches to
//! the exact Cramér–Lundberg exponential tail `P(W > t) ∝ e^{−θt}`
//! (with `θ` the unique positive root of `λ(e^{θD} − 1) = θ`), anchored
//! continuously at the last stable point — asymptotically exact and
//! monotone.

use lit_sim::Duration;

/// An M/D/1 queue: Poisson arrivals at rate `λ`, fixed service time `D`.
///
/// ```
/// use lit_analysis::Md1;
/// use lit_sim::Duration;
///
/// // The paper's Figure 9 reference server: a_P = 1.5143 ms,
/// // 424-bit cells at 400 kbit/s (rho = 0.7).
/// let q = Md1::from_mean_gap(
///     Duration::from_secs_f64(1.5143e-3),
///     Duration::from_bits_at_rate(424, 400_000),
/// );
/// assert!((q.rho() - 0.7).abs() < 1e-3);
/// // Sojourn tail used by the ineq.-16 bound:
/// let p = q.sojourn_ccdf(Duration::from_ms(10));
/// assert!(p > 0.0 && p < 0.1);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Md1 {
    /// Arrival rate in packets per second.
    lambda: f64,
    /// Service time in seconds.
    service: f64,
}

impl Md1 {
    /// Construct from the arrival rate (packets/s) and service time.
    ///
    /// # Panics
    /// Panics unless `0 < λ·D < 1` (the queue must be stable) and both
    /// parameters are positive and finite.
    pub fn new(lambda_per_sec: f64, service: Duration) -> Self {
        let d = service.as_secs_f64();
        assert!(
            lambda_per_sec.is_finite() && lambda_per_sec > 0.0,
            "Md1: bad lambda"
        );
        assert!(d > 0.0, "Md1: zero service time");
        let rho = lambda_per_sec * d;
        assert!(rho < 1.0, "Md1: unstable (rho = {rho})");
        Md1 {
            lambda: lambda_per_sec,
            service: d,
        }
    }

    /// Convenience constructor from mean interarrival gap `a_P` and service
    /// time (the paper's parameterization).
    pub fn from_mean_gap(mean_gap: Duration, service: Duration) -> Self {
        Md1::new(1.0 / mean_gap.as_secs_f64(), service)
    }

    /// Utilization `ρ = λ·D`.
    pub fn rho(&self) -> f64 {
        self.lambda * self.service
    }

    /// Mean waiting time (excluding service): `ρD / (2(1−ρ))`
    /// (Pollaczek–Khinchine).
    pub fn mean_wait(&self) -> Duration {
        let rho = self.rho();
        Duration::from_secs_f64(rho * self.service / (2.0 * (1.0 - rho)))
    }

    /// Mean sojourn time (waiting + service).
    pub fn mean_sojourn(&self) -> Duration {
        self.mean_wait() + Duration::from_secs_f64(self.service)
    }

    /// Crommelin's alternating series, returning `(cdf, noise)` where
    /// `noise` is an estimate of the absolute cancellation error: the
    /// largest term magnitude times the term count times `f64` epsilon.
    fn wait_cdf_series(&self, t: f64) -> (f64, f64) {
        let d = self.service;
        let lam = self.lambda;
        let kmax = (t / d).floor() as i64;
        if kmax < 0 {
            return (0.0, 0.0);
        }
        // ln-factorial built incrementally; Kahan-compensated sum.
        let mut sum = 0.0f64;
        let mut comp = 0.0f64;
        let mut ln_fact = 0.0f64;
        let mut max_mag = 0.0f64;
        for k in 0..=kmax {
            if k > 0 {
                ln_fact += (k as f64).ln();
            }
            let x = lam * (t - k as f64 * d); // ≥ 0 for k ≤ kmax
            let ln_mag = if x > 0.0 {
                k as f64 * x.ln() + x - ln_fact
            } else {
                // x == 0 ⇒ the k = 0 term is e^0 = 1; higher k contribute 0.
                if k == 0 {
                    0.0
                } else {
                    f64::NEG_INFINITY
                }
            };
            let mag = ln_mag.exp();
            max_mag = max_mag.max(mag);
            let term = mag * if k % 2 == 0 { 1.0 } else { -1.0 };
            // Kahan step.
            let y = term - comp;
            let s = sum + y;
            comp = (s - sum) - y;
            sum = s;
        }
        let scale = 1.0 - self.rho();
        let noise = scale * max_mag * (kmax + 1) as f64 * f64::EPSILON;
        ((scale * sum).clamp(0.0, 1.0), noise)
    }

    /// The asymptotic decay rate `θ` of `P(W > t)`: the unique positive
    /// root of `λ(e^{θD} − 1) = θ` (the pole of the Pollaczek–Khinchine
    /// transform), found by bisection.
    pub fn tail_decay_rate(&self) -> f64 {
        let lam = self.lambda;
        let d = self.service;
        let f = |theta: f64| lam * ((theta * d).exp() - 1.0) - theta;
        // f(0) = 0 with f'(0) = ρ − 1 < 0; f → +∞. Bracket the root.
        let mut hi = 1.0 / d;
        while f(hi) <= 0.0 {
            hi *= 2.0;
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if f(mid) <= 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// The largest time at which the series CCDF still dominates its own
    /// cancellation noise by a factor of 100 — the hand-off point to the
    /// exponential tail. Found by stepping down from the requested time in
    /// service-time increments.
    fn tail_anchor(&self, t: f64) -> f64 {
        // Never start above λt = 30: beyond that the series terms overflow
        // towards infinity and the value is pure noise anyway.
        let mut anchor = t.min(30.0 / self.lambda);
        loop {
            let (cdf, noise) = self.wait_cdf_series(anchor);
            if 1.0 - cdf > 100.0 * noise || anchor <= self.service {
                return anchor;
            }
            anchor -= self.service;
        }
    }

    /// `P(W ≤ t)` — CDF of the FIFO waiting time.
    pub fn wait_cdf(&self, t: Duration) -> f64 {
        let t = t.as_secs_f64();
        if self.lambda * t <= 30.0 {
            let (direct, noise) = self.wait_cdf_series(t);
            // Direct evaluation is fine while the answer dwarfs the noise.
            if 1.0 - direct > 100.0 * noise {
                return direct;
            }
        }
        // Otherwise: exact exponential tail, anchored continuously at the
        // last time the series is trustworthy.
        let anchor = self.tail_anchor(t);
        let anchor_ccdf = (1.0 - self.wait_cdf_series(anchor).0).max(0.0);
        let theta = self.tail_decay_rate();
        let ccdf = anchor_ccdf * (-theta * (t - anchor)).exp();
        (1.0 - ccdf).clamp(0.0, 1.0)
    }

    /// `P(W > t)` — complementary CDF of the waiting time.
    pub fn wait_ccdf(&self, t: Duration) -> f64 {
        1.0 - self.wait_cdf(t)
    }

    /// `P(D_ref > t)` where `D_ref = W + D` is the total delay through the
    /// reference server — the quantity the paper's ineq. 16 shifts.
    pub fn sojourn_ccdf(&self, t: Duration) -> f64 {
        match t.checked_sub(Duration::from_secs_f64(self.service)) {
            Some(w) => self.wait_ccdf(w),
            // Delay is always at least the service time.
            None => 1.0,
        }
    }

    /// `P(D_ref ≤ t)`.
    pub fn sojourn_cdf(&self, t: Duration) -> f64 {
        1.0 - self.sojourn_ccdf(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lit_sim::{SimRng, Time};
    use lit_traffic::{PoissonSource, Source};

    /// Paper Fig. 9 session: a_P = 1.5143 ms, r = 400 kbit/s, L = 424 bits.
    fn fig9_queue() -> Md1 {
        Md1::from_mean_gap(
            Duration::from_secs_f64(1.5143e-3),
            Duration::from_bits_at_rate(424, 400_000),
        )
    }

    #[test]
    fn rho_matches_paper_utilizations() {
        assert!((fig9_queue().rho() - 0.7).abs() < 0.001);
        // Fig. 10 session: a_P = 40 ms, r = 32 kbit/s → ρ = 0.33.
        let q = Md1::from_mean_gap(
            Duration::from_ms(40),
            Duration::from_bits_at_rate(424, 32_000),
        );
        assert!((q.rho() - 0.33125).abs() < 0.001, "rho={}", q.rho());
    }

    #[test]
    fn cdf_boundaries() {
        let q = fig9_queue();
        assert_eq!(q.wait_cdf(Duration::ZERO), 1.0 - q.rho());
        // Far tail: effectively 1.
        assert!(q.wait_cdf(Duration::from_secs(5)) > 1.0 - 1e-9);
        // Sojourn below the service time is impossible.
        assert_eq!(q.sojourn_ccdf(Duration::from_us(500)), 1.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let q = fig9_queue();
        let mut prev = 0.0;
        for i in 0..500 {
            let t = Duration::from_us(i * 100);
            let c = q.wait_cdf(t);
            // The alternating series carries a cancellation-noise floor
            // bounded (by construction) at 1 % of the local CCDF.
            assert!(
                c + 0.011 * (1.0 - c).max(1e-12) >= prev,
                "non-monotone at {t}: {c} < {prev}"
            );
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn mean_wait_pollaczek_khinchine() {
        let q = fig9_queue();
        // rho=0.7, D=1.06ms -> E[W] = 0.7*1.06/(2*0.3) = 1.2366... ms
        let want = 0.7 * 1.06e-3 / (2.0 * 0.3);
        assert!((q.mean_wait().as_secs_f64() - want).abs() < 2e-6);
    }

    #[test]
    fn mean_wait_agrees_with_integrated_ccdf() {
        // E[W] = ∫ P(W > t) dt — ties the distribution to the PK mean.
        let q = fig9_queue();
        let dt = 2e-5;
        let mut acc = 0.0;
        let mut t = 0.0;
        while t < 0.2 {
            acc += q.wait_ccdf(Duration::from_secs_f64(t)) * dt;
            t += dt;
        }
        let want = q.mean_wait().as_secs_f64();
        assert!(
            (acc - want).abs() / want < 0.02,
            "integrated={acc}, pk={want}"
        );
    }

    /// Simulate the reference server (eq. 1 of the paper) fed by a Poisson
    /// source and compare the empirical delay CCDF to the analytic one.
    #[test]
    fn analytic_matches_simulated_reference_server() {
        let q = fig9_queue();
        let mut src = PoissonSource::new(Duration::from_secs_f64(1.5143e-3), 424);
        let mut rng = SimRng::seed_from(1234);
        let service = Duration::from_bits_at_rate(424, 400_000);
        let mut w_prev = Time::ZERO; // W_{0} = t_1 handled on first packet
        let mut first = true;
        let mut delays: Vec<Duration> = Vec::new();
        for _ in 0..400_000u32 {
            let e = src.next_emission(&mut rng).unwrap();
            if first {
                w_prev = e.at;
                first = false;
            }
            let w = e.at.max(w_prev) + service;
            delays.push(w - e.at);
            w_prev = w;
        }
        let n = delays.len() as f64;
        for t_ms in [2.0, 5.0, 10.0, 15.0] {
            let t = Duration::from_millis_f64(t_ms);
            let emp = delays.iter().filter(|&&d| d > t).count() as f64 / n;
            let ana = q.sojourn_ccdf(t);
            let tol = 3.0 * (ana * (1.0 - ana) / n).sqrt() + 0.003;
            assert!(
                (emp - ana).abs() < tol,
                "t={t_ms}ms emp={emp} ana={ana} tol={tol}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn rejects_unstable_queue() {
        let _ = Md1::new(1000.0, Duration::from_ms(2));
    }
}
