//! Fixed-bin-width histograms over durations, with exact extrema.
//!
//! The simulator delivers millions of per-packet delay samples per run;
//! storing them raw is wasteful when every figure in the paper is either a
//! distribution plot (Fig. 8, 12, 13), a CCDF (Figs. 9–11), or a max/jitter
//! summary (Figs. 7, 14–17). [`DurationHistogram`] keeps counts in fixed
//! bins *plus* the exact minimum and maximum, so bound checks ("observed
//! max below calculated upper bound") are not blurred by binning.

use lit_sim::Duration;

/// A histogram of [`Duration`] samples with fixed bin width.
#[derive(Clone, Debug)]
pub struct DurationHistogram {
    bin_width: Duration,
    /// `bins[i]` counts samples in `[i·w, (i+1)·w)`.
    bins: Vec<u64>,
    /// Samples at or above `bins.len() · w`.
    overflow: u64,
    count: u64,
    sum_ps: u128,
    min: Duration,
    max: Duration,
}

impl DurationHistogram {
    /// A histogram with `nbins` bins of width `bin_width`; samples beyond
    /// the last bin land in a single overflow bucket (still counted in all
    /// aggregate statistics).
    ///
    /// # Panics
    /// Panics if `bin_width` is zero or `nbins` is zero.
    pub fn new(bin_width: Duration, nbins: usize) -> Self {
        assert!(bin_width > Duration::ZERO, "histogram: zero bin width");
        assert!(nbins > 0, "histogram: zero bins");
        DurationHistogram {
            bin_width,
            bins: vec![0; nbins],
            overflow: 0,
            count: 0,
            sum_ps: 0,
            min: Duration::MAX,
            max: Duration::ZERO,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        self.count += 1;
        self.sum_ps += d.as_ps() as u128;
        self.min = self.min.min(d);
        self.max = self.max.max(d);
        let idx = (d.as_ps() / self.bin_width.as_ps()) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<Duration> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest sample, or `None` if empty.
    pub fn max(&self) -> Option<Duration> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact range `max − min` (the paper's *jitter* of a sample set), or
    /// `None` if empty.
    pub fn spread(&self) -> Option<Duration> {
        (self.count > 0).then(|| self.max - self.min)
    }

    /// Mean of all samples, or `None` if empty.
    pub fn mean(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_ps((self.sum_ps / self.count as u128) as u64))
    }

    /// The configured bin width.
    pub fn bin_width(&self) -> Duration {
        self.bin_width
    }

    /// Count in the overflow bucket.
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// Raw bin counts: `bin_counts()[i]` counts samples in
    /// `[i·w, (i+1)·w)`. Exposed for exact count-based comparisons (the
    /// conformance oracle's ineq.-16 check), where the f64 CCDF helpers
    /// would round.
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// Iterate `(bin_lower_edge, count)` for all non-empty bins.
    pub fn nonempty_bins(&self) -> impl Iterator<Item = (Duration, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (self.bin_width * i as u64, c))
    }

    /// Fraction of samples in each bin, `(bin_lower_edge, fraction)`, for
    /// distribution plots like the paper's Figure 8.
    pub fn pdf(&self) -> Vec<(Duration, f64)> {
        let n = self.count.max(1) as f64;
        self.nonempty_bins()
            .map(|(edge, c)| (edge, c as f64 / n))
            .collect()
    }

    /// Empirical complementary CDF evaluated at the *upper edge* of every
    /// bin: returns `(d, P(sample > d))` pairs, ending with the exact max.
    ///
    /// Evaluating at upper edges makes the empirical CCDF an exact lower
    /// bound of the true `P(D > d)` staircase, so comparisons against
    /// analytic *upper* bounds (ineq. 16, Figs. 9–11) are conservative in
    /// the right direction.
    pub fn ccdf(&self) -> Vec<(Duration, f64)> {
        if self.count == 0 {
            return Vec::new();
        }
        let n = self.count as f64;
        let mut remaining = self.count;
        let mut out = Vec::new();
        for (i, &c) in self.bins.iter().enumerate() {
            remaining -= c;
            if c > 0 || i == 0 {
                let upper = self.bin_width * (i as u64 + 1);
                out.push((upper, remaining as f64 / n));
            }
            if remaining == 0 {
                break;
            }
        }
        if self.overflow > 0 {
            out.push((self.max, 0.0));
        }
        out
    }

    /// Upper estimate of `P(sample > t)`: every sample in the bin
    /// containing `t` is counted as exceeding `t`, so the estimate is
    /// always ≥ the true empirical CCDF — the right direction when the
    /// histogram stands in for a distribution being used as an *upper
    /// bound* (the paper's "simulated upper bound" of Figs. 9–11).
    pub fn ccdf_at(&self, t: Duration) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let idx = (t.as_ps() / self.bin_width.as_ps()) as usize;
        let below: u64 = self.bins.iter().take(idx.min(self.bins.len())).sum();
        (self.count - below) as f64 / self.count as f64
    }

    /// The smallest duration `d` (resolved to a bin upper edge, or the
    /// exact max for the last sample) such that at least `q · count`
    /// samples are `≤ d`. `q` must be in `(0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        assert!(q > 0.0 && q <= 1.0, "quantile: q out of range");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut cum = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(self.bin_width * (i as u64 + 1));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram with identical bin layout into this one.
    ///
    /// # Panics
    /// Panics on mismatched bin width or bin count.
    pub fn merge(&mut self, other: &DurationHistogram) {
        assert_eq!(self.bin_width, other.bin_width, "merge: bin width mismatch");
        assert_eq!(
            self.bins.len(),
            other.bins.len(),
            "merge: bin count mismatch"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum_ps += other.sum_ps;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> Duration {
        Duration::from_ms(x)
    }

    #[test]
    fn records_extrema_exactly() {
        let mut h = DurationHistogram::new(ms(1), 100);
        h.record(Duration::from_us(1_499));
        h.record(Duration::from_us(7_301));
        h.record(Duration::from_us(2));
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(Duration::from_us(2)));
        assert_eq!(h.max(), Some(Duration::from_us(7_301)));
        assert_eq!(h.spread(), Some(Duration::from_us(7_299)));
    }

    #[test]
    fn empty_histogram() {
        let h = DurationHistogram::new(ms(1), 10);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.spread(), None);
        assert!(h.ccdf().is_empty());
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn binning_and_overflow() {
        let mut h = DurationHistogram::new(ms(1), 5);
        h.record(ms(0)); // bin 0
        h.record(Duration::from_us(999)); // bin 0
        h.record(ms(1)); // bin 1
        h.record(ms(4)); // bin 4
        h.record(ms(5)); // overflow
        h.record(ms(100)); // overflow
        let bins: Vec<_> = h.nonempty_bins().collect();
        assert_eq!(bins, vec![(ms(0), 2), (ms(1), 1), (ms(4), 1)]);
        assert_eq!(h.overflow_count(), 2);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn ccdf_is_monotone_nonincreasing_and_reaches_zero() {
        let mut h = DurationHistogram::new(Duration::from_us(100), 1000);
        for i in 0..1000u64 {
            h.record(Duration::from_us(i * 97 % 50_000));
        }
        let c = h.ccdf();
        assert!(!c.is_empty());
        for w in c.windows(2) {
            assert!(w[0].1 >= w[1].1, "ccdf not monotone");
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(c.last().unwrap().1, 0.0);
    }

    #[test]
    fn ccdf_at_is_conservative_upper_estimate() {
        let mut h = DurationHistogram::new(ms(1), 10);
        h.record(Duration::from_us(500)); // bin 0
        h.record(Duration::from_us(2_500)); // bin 2
        h.record(Duration::from_us(2_700)); // bin 2
        h.record(ms(50)); // overflow
                          // t inside bin 0: everything counts as above.
        assert_eq!(h.ccdf_at(Duration::from_us(100)), 1.0);
        // t inside bin 2: bin-0 sample excluded, bin-2 samples included.
        assert_eq!(h.ccdf_at(Duration::from_us(2_600)), 0.75);
        // t past all bins: only overflow remains.
        assert_eq!(h.ccdf_at(ms(20)), 0.25);
        // Conservative: true empirical P(X > 2.6ms) is 0.5, estimate 0.75.
        let empty = DurationHistogram::new(ms(1), 4);
        assert_eq!(empty.ccdf_at(ms(1)), 0.0);
    }

    #[test]
    fn quantiles() {
        let mut h = DurationHistogram::new(ms(1), 100);
        for i in 1..=100u64 {
            h.record(ms(i) - Duration::from_us(500)); // bins 0..99
        }
        // Median should land near 50 ms.
        let q50 = h.quantile(0.5).unwrap();
        assert!(q50 >= ms(49) && q50 <= ms(51), "q50={q50}");
        assert_eq!(h.quantile(1.0).unwrap(), h.max().unwrap().max(ms(100)));
    }

    #[test]
    fn mean_is_exact_sum_division() {
        let mut h = DurationHistogram::new(ms(1), 10);
        h.record(ms(2));
        h.record(ms(4));
        assert_eq!(h.mean(), Some(ms(3)));
    }

    #[test]
    fn merge_combines() {
        let mut a = DurationHistogram::new(ms(1), 10);
        let mut b = DurationHistogram::new(ms(1), 10);
        a.record(ms(1));
        b.record(ms(5));
        b.record(ms(20)); // overflow
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Some(ms(20)));
        assert_eq!(a.overflow_count(), 1);
    }

    #[test]
    fn pdf_sums_to_at_most_one() {
        let mut h = DurationHistogram::new(ms(1), 4);
        for i in 0..10 {
            h.record(ms(i % 6));
        }
        let total: f64 = h.pdf().iter().map(|(_, f)| f).sum();
        assert!(total <= 1.0 + 1e-12);
        assert!(total > 0.5);
    }

    #[test]
    #[should_panic(expected = "bin width mismatch")]
    fn merge_rejects_mismatch() {
        let mut a = DurationHistogram::new(ms(1), 10);
        let b = DurationHistogram::new(ms(2), 10);
        a.merge(&b);
    }
}
