//! Batch-means confidence intervals for steady-state simulation output.
//!
//! A single long run's per-packet delays are heavily autocorrelated, so
//! the naive `s/√n` confidence interval is far too optimistic. The
//! classical remedy — used here for the reproduction's mean-delay
//! estimates — is the **method of batch means**: split the sample stream
//! into `k` contiguous batches, average each batch, and treat the batch
//! averages as (approximately) independent observations. With `k` around
//! 20–40 the batch averages are close enough to i.i.d. normal for a
//! t-interval, and the batch size grows automatically as samples arrive
//! (batch doubling), so one pass works for any run length.

use crate::stats::OnlineStats;

/// Streaming batch-means accumulator with automatic batch doubling.
///
/// Starts with `target_batches · 2` batches of `initial_batch` samples;
/// whenever the number of completed batches reaches `2 · target_batches`,
/// adjacent batches are merged pairwise and the batch size doubles —
/// keeping the batch count in `[target_batches, 2·target_batches)` forever
/// while each batch grows long enough to wash out autocorrelation.
#[derive(Clone, Debug)]
pub struct BatchMeans {
    target_batches: usize,
    batch_size: u64,
    /// Completed batch means.
    batches: Vec<f64>,
    /// Running sum/count of the batch in progress.
    cur_sum: f64,
    cur_n: u64,
    /// All-sample statistics (for the point estimate).
    all: OnlineStats,
}

impl BatchMeans {
    /// An accumulator aiming for `target_batches` batches (≥ 2), starting
    /// from batches of `initial_batch` samples (≥ 1).
    pub fn new(target_batches: usize, initial_batch: u64) -> Self {
        assert!(target_batches >= 2, "batch means: need at least 2 batches");
        assert!(initial_batch >= 1, "batch means: empty batches");
        BatchMeans {
            target_batches,
            batch_size: initial_batch,
            batches: Vec::new(),
            cur_sum: 0.0,
            cur_n: 0,
            all: OnlineStats::new(),
        }
    }

    /// A sensible default: 32 batches, starting at 64 samples per batch.
    pub fn default_config() -> Self {
        BatchMeans::new(32, 64)
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.all.record(x);
        self.cur_sum += x;
        self.cur_n += 1;
        if self.cur_n == self.batch_size {
            self.batches.push(self.cur_sum / self.cur_n as f64);
            self.cur_sum = 0.0;
            self.cur_n = 0;
            if self.batches.len() >= 2 * self.target_batches {
                // Merge adjacent batches; double the batch size.
                let merged: Vec<f64> = self
                    .batches
                    .chunks(2)
                    .map(|c| c.iter().sum::<f64>() / c.len() as f64)
                    .collect();
                self.batches = merged;
                self.batch_size *= 2;
            }
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.all.count()
    }

    /// Point estimate: the grand mean over *all* samples.
    pub fn mean(&self) -> Option<f64> {
        self.all.mean()
    }

    /// Number of completed batches.
    pub fn num_batches(&self) -> usize {
        self.batches.len()
    }

    /// Half-width of the ~95 % confidence interval from the batch means,
    /// or `None` with fewer than 2 completed batches.
    ///
    /// Uses the t-distribution's 97.5 % quantile (two-sided 95 %) with
    /// `k − 1` degrees of freedom, from a small table (exact asymptotics
    /// are pointless at this precision).
    pub fn half_width(&self) -> Option<f64> {
        let k = self.batches.len();
        if k < 2 {
            return None;
        }
        let mean = self.batches.iter().sum::<f64>() / k as f64;
        let var = self.batches.iter().map(|b| (b - mean).powi(2)).sum::<f64>() / (k as f64 - 1.0);
        Some(t_975(k - 1) * (var / k as f64).sqrt())
    }

    /// `(mean, half_width)` if at least two batches completed.
    pub fn interval(&self) -> Option<(f64, f64)> {
        Some((self.mean()?, self.half_width()?))
    }
}

/// Two-sided-95 % Student-t quantile for `df` degrees of freedom.
fn t_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else if df <= 60 {
        2.00
    } else {
        1.96
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lit_sim::SimRng;

    #[test]
    fn covers_iid_mean() {
        // For i.i.d. samples the interval should cover the true mean in
        // the vast majority of replications.
        let mut covered = 0;
        for seed in 0..40u64 {
            let mut rng = SimRng::seed_from(seed);
            let mut bm = BatchMeans::new(16, 32);
            for _ in 0..20_000 {
                bm.record(rng.unit_f64()); // mean 0.5
            }
            let (m, h) = bm.interval().unwrap();
            if (m - 0.5).abs() <= h {
                covered += 1;
            }
        }
        assert!(covered >= 34, "covered only {covered}/40");
    }

    #[test]
    fn widens_under_autocorrelation() {
        // An AR(1)-ish stream: the naive s/sqrt(n) interval would be ~3x
        // too small at phi = 0.8; batch means must widen accordingly.
        let mut rng = SimRng::seed_from(5);
        let mut bm = BatchMeans::new(16, 32);
        let mut naive = OnlineStats::new();
        let mut x = 0.0f64;
        for _ in 0..50_000 {
            x = 0.8 * x + (rng.unit_f64() - 0.5);
            bm.record(x);
            naive.record(x);
        }
        let h_batch = bm.half_width().unwrap();
        let h_naive = 1.96 * naive.stddev().unwrap() / (naive.count() as f64).sqrt();
        assert!(
            h_batch > 2.0 * h_naive,
            "batch {h_batch} vs naive {h_naive}"
        );
    }

    #[test]
    fn batch_doubling_caps_batch_count() {
        let mut bm = BatchMeans::new(8, 1);
        for i in 0..10_000 {
            bm.record(i as f64);
        }
        assert!(bm.num_batches() < 16, "batches={}", bm.num_batches());
        assert!(bm.num_batches() >= 8);
        assert_eq!(bm.count(), 10_000);
    }

    #[test]
    fn too_few_batches_gives_none() {
        let mut bm = BatchMeans::new(4, 1000);
        for _ in 0..10 {
            bm.record(1.0);
        }
        assert_eq!(bm.half_width(), None);
        assert_eq!(bm.mean(), Some(1.0));
    }

    #[test]
    fn t_table_monotone() {
        assert!(t_975(1) > t_975(2));
        assert!(t_975(10) > t_975(30));
        assert!(t_975(30) >= t_975(61));
        assert_eq!(t_975(0), f64::INFINITY);
    }
}
