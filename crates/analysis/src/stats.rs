//! Small streaming statistics helpers.

use lit_sim::{Duration, Time};

/// Streaming mean/variance/extrema over `f64` samples (Welford's online
/// algorithm — numerically stable, single pass).
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Population standard deviation, or `None` if empty.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Accumulates the fraction of time a two-state (busy/idle) process spends
/// busy — used for measured link utilization.
#[derive(Clone, Copy, Debug, Default)]
pub struct BusyFraction {
    busy: Duration,
    busy_since: Option<Time>,
}

impl BusyFraction {
    /// A tracker that starts idle at `Time::ZERO`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark the process busy from `now`. Idempotent if already busy.
    pub fn set_busy(&mut self, now: Time) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
        }
    }

    /// Mark the process idle from `now`, accumulating the elapsed busy
    /// span. Idempotent if already idle.
    pub fn set_idle(&mut self, now: Time) {
        if let Some(since) = self.busy_since.take() {
            self.busy += now - since;
        }
    }

    /// Exact accumulated busy time over `[ZERO, now]`, closing any open
    /// busy interval virtually at `now` — the fixed-point sibling of
    /// [`BusyFraction::fraction_at`], for checks that compare busy time
    /// against transmitted work without float rounding.
    pub fn busy_at(&self, now: Time) -> Duration {
        let mut busy = self.busy;
        if let Some(since) = self.busy_since {
            busy += now - since;
        }
        busy
    }

    /// Busy fraction over `[ZERO, now]`, closing any open busy interval
    /// virtually at `now`.
    pub fn fraction_at(&self, now: Time) -> f64 {
        if now == Time::ZERO {
            return 0.0;
        }
        let mut busy = self.busy;
        if let Some(since) = self.busy_since {
            busy += now - since;
        }
        busy.as_secs_f64() / (now - Time::ZERO).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((s.variance().unwrap() - 4.0).abs() < 1e-12);
        assert!((s.stddev().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn busy_fraction_half() {
        let mut b = BusyFraction::new();
        b.set_busy(Time::from_ms(0));
        b.set_idle(Time::from_ms(5));
        b.set_busy(Time::from_ms(8));
        b.set_idle(Time::from_ms(13));
        assert!((b.fraction_at(Time::from_ms(20)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn busy_at_is_exact_and_closes_open_intervals() {
        let mut b = BusyFraction::new();
        b.set_busy(Time::from_ms(1));
        b.set_idle(Time::from_ms(4));
        assert_eq!(b.busy_at(Time::from_ms(10)), Duration::from_ms(3));
        b.set_busy(Time::from_ms(8));
        assert_eq!(b.busy_at(Time::from_ms(10)), Duration::from_ms(5));
    }

    #[test]
    fn busy_fraction_open_interval_counts() {
        let mut b = BusyFraction::new();
        b.set_busy(Time::from_ms(10));
        assert!((b.fraction_at(Time::from_ms(20)) - 0.5).abs() < 1e-12);
        // Idempotent busy/idle.
        b.set_busy(Time::from_ms(15));
        b.set_idle(Time::from_ms(20));
        b.set_idle(Time::from_ms(25));
        assert!((b.fraction_at(Time::from_ms(20)) - 0.5).abs() < 1e-12);
    }
}
