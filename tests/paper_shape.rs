//! Integration tests: reduced-horizon versions of every paper experiment,
//! asserting the qualitative *shape* the paper reports and that every
//! analytic bound holds on the simulated data.
//!
//! The full-horizon versions live in the `lit-repro` binary; these run the
//! same code paths at 15–30 simulated seconds, which is long enough for
//! the structural claims (bounds, orderings, isolation) to be decidable.

#![forbid(unsafe_code)]

use lit_repro::experiments::{common, fig14_17, fig7, fig8, fig9_11, firewall, RunConfig};
use lit_sim::Duration;

fn quick(seconds: u64) -> RunConfig {
    RunConfig {
        seconds: Some(seconds),
        ..RunConfig::paper()
    }
}

// ---------------------------------------------------------------- Figure 7

#[test]
fn fig7_bounds_hold_across_the_sweep() {
    for &a_off_us in &[6_500u64, 88_000, 650_000] {
        let p = fig7::point(&quick(15), Duration::from_us(a_off_us));
        assert!(p.delivered > 100, "a_off={a_off_us}us: too few packets");
        assert!(
            p.max_delay < p.delay_bound,
            "a_off={a_off_us}us: {} !< {}",
            p.max_delay,
            p.delay_bound
        );
        assert!(p.jitter < p.jitter_bound);
        // The scheduler never saturates: F̂ < F + L_MAX/C.
        assert!(p.lateness_fraction < 1.0, "{}", p.lateness_fraction);
        // Measured utilization tracks the sources' duty cycle.
        assert!(
            (p.measured_utilization - p.expected_utilization).abs() < 0.04,
            "util {} vs duty {}",
            p.measured_utilization,
            p.expected_utilization
        );
    }
}

#[test]
fn fig7_utilization_endpoints_match_paper() {
    let lo = fig7::point(&quick(15), Duration::from_us(6_500));
    let hi = fig7::point(&quick(15), Duration::from_ms(650));
    assert!((lo.expected_utilization - 0.982).abs() < 1e-3);
    assert!((hi.expected_utilization - 0.351).abs() < 1e-3);
    // Delay stays far below the ~72.6 ms bound even at 98 % utilization —
    // the paper's headline observation for this figure.
    assert!(lo.max_delay < Duration::from_ms(30), "{}", lo.max_delay);
}

// ------------------------------------------------------- Figures 8, 12, 13

#[test]
fn fig8_jitter_control_shape() {
    let r = fig8::run(&quick(30));
    let (no_jc, jc) = (&r.sessions[0], &r.sessions[1]);
    assert!(no_jc.delivered > 300 && jc.delivered > 300);

    // Jitter bounds: 66.25 ms and 13.25 ms (paper values).
    assert!((no_jc.jitter_bound.as_millis_f64() - 66.25).abs() < 0.01);
    assert!((jc.jitter_bound.as_millis_f64() - 13.25).abs() < 0.01);
    assert!(no_jc.jitter < no_jc.jitter_bound);
    assert!(jc.jitter < jc.jitter_bound);

    // Control reduces jitter by a large factor...
    assert!(jc.jitter.as_ps() * 3 < no_jc.jitter.as_ps());
    // ...and raises the mean delay (packets are pushed toward the bound).
    assert!(jc.mean_delay > no_jc.mean_delay);

    // Both sessions respect the common delay bound.
    assert!(no_jc.max_delay < no_jc.delay_bound);
    assert!(jc.max_delay < jc.delay_bound);
    assert!(r.lateness_fraction < 1.0);
}

#[test]
fn fig12_fig13_buffer_bounds_hold_at_every_hop() {
    let r = fig8::run(&quick(30));
    for s in &r.sessions {
        for (name, b) in [("first", &s.buffer_first), ("last", &s.buffer_last)] {
            assert!(
                b.max_bits <= b.bound_bits,
                "jc={} {name}: {} > {}",
                s.jitter_control,
                b.max_bits,
                b.bound_bits
            );
        }
    }
    // Paper: jitter control shrinks the *downstream* buffer requirement.
    let (no_jc, jc) = (&r.sessions[0], &r.sessions[1]);
    assert!(jc.buffer_last.bound_bits < no_jc.buffer_last.bound_bits);
    // At the first node both bounds coincide.
    assert_eq!(jc.buffer_first.bound_bits, no_jc.buffer_first.bound_bits);
}

// ------------------------------------------------------- Figures 9, 10, 11

fn check_distribution(variant: fig9_11::Variant, expect_rho: f64) {
    let r = fig9_11::run(&quick(30), variant);
    assert!((r.rho - expect_rho).abs() < 0.01, "rho={}", r.rho);
    assert!(r.delivered > 300);
    assert!(r.lateness_fraction < 1.0);
    let n = r.delivered as f64;
    for p in &r.points {
        // The simulated bound is pathwise (D_i ≤ D_i^ref + shift), so the
        // empirical CCDF may never exceed it.
        assert!(
            p.empirical <= p.simulated_bound + 1e-12,
            "{} at {}: emp {} > sim bound {}",
            variant.name(),
            p.delay,
            p.empirical,
            p.simulated_bound
        );
        // Against the analytic bound, allow binomial sampling noise.
        let noise = 4.0 * (p.analytic_bound * (1.0 - p.analytic_bound) / n).sqrt() + 3.0 / n;
        assert!(
            p.empirical <= p.analytic_bound + noise,
            "{} at {}: emp {} > analytic {} (+{noise})",
            variant.name(),
            p.delay,
            p.empirical,
            p.analytic_bound
        );
    }
}

#[test]
fn fig9_distribution_bound() {
    check_distribution(fig9_11::Variant::Fig9, 0.70);
}

#[test]
fn fig10_distribution_bound() {
    check_distribution(fig9_11::Variant::Fig10, 0.33);
}

#[test]
fn fig11_distribution_bound() {
    check_distribution(fig9_11::Variant::Fig11, 0.33);
}

#[test]
fn fig10_bound_is_looser_than_fig9() {
    // The paper: for the low-rate session the analytic bound visibly
    // detaches from the observation (β grows as r shrinks). Compare the
    // 1 % read-outs of bound vs empirical in both figures.
    let r9 = fig9_11::run(&quick(30), fig9_11::Variant::Fig9);
    let r10 = fig9_11::run(&quick(30), fig9_11::Variant::Fig10);
    let gap = |r: &fig9_11::DistResult| {
        let ana = r.analytic_percentile(0.01).unwrap();
        let emp = r.empirical_percentile(0.01).unwrap();
        ana.as_millis_f64() - emp.as_millis_f64()
    };
    assert!(
        gap(&r10) > 2.0 * gap(&r9),
        "fig10 gap {} !>> fig9 gap {}",
        gap(&r10),
        gap(&r9)
    );
}

// --------------------------------------------------------- Figures 14–17

#[test]
fn fig14_17_class_hierarchy_shape() {
    let p = fig14_17::point(&quick(20), Duration::from_ms(88));
    let [c1_nojc, c1_jc, c2_nojc, c2_jc] = p.tagged;

    // Every tagged session respects its bounds.
    for (m, jc) in [
        (c1_nojc, false),
        (c1_jc, true),
        (c2_nojc, false),
        (c2_jc, true),
    ] {
        assert!(m.delivered > 200);
        assert!(
            m.max_delay < m.delay_bound,
            "{} !< {}",
            m.max_delay,
            m.delay_bound
        );
        assert!(
            m.jitter < m.jitter_bound,
            "{} !< {} (jc={jc})",
            m.jitter,
            m.jitter_bound
        );
    }

    // The class hierarchy: class 1 beats class 2 on delay and jitter for
    // matching jitter-control modes.
    assert!(c1_nojc.max_delay < c2_nojc.max_delay);
    assert!(c1_jc.max_delay < c2_jc.max_delay);
    assert!(c1_nojc.jitter < c2_nojc.jitter);
    assert!(c1_jc.jitter < c2_jc.jitter);

    // Jitter control still works within each class.
    assert!(c1_jc.jitter < c1_nojc.jitter);
    assert!(c2_jc.jitter < c2_nojc.jitter);

    assert!(p.lateness_fraction < 1.0);
}

// ---------------------------------------------------- pathwise ineq. (12)

#[test]
fn pathwise_excess_never_reaches_beta_plus_alpha() {
    // The strongest check in the suite: for every delivered packet of
    // every session in a fully loaded MIX network,
    // D_i − D_i^ref < β + α must hold individually.
    let (mut net, _) = common::build_mix_one_class(Duration::from_ms(88), 77);
    net.run_until(lit_sim::Time::from_secs(15));
    for i in 0..net.num_sessions() {
        let id = lit_net::SessionId(i as u32);
        let st = net.session_stats(id);
        if st.delivered == 0 {
            continue;
        }
        let pb = lit_core::PathBounds::for_session(&net, id);
        assert!(
            st.max_excess().unwrap() < pb.shift_ps(),
            "session {i}: excess {} !< shift {}",
            st.max_excess().unwrap(),
            pb.shift_ps()
        );
    }
}

// ----------------------------------------------------------------- firewall

#[test]
fn firewall_fcfs_is_the_outlier() {
    // 60 s, not 20: the victim needs a few ON-periods to collide with
    // burst alignments before FCFS pushes it past the bound (it first
    // crosses near t ≈ 40 s with this seed; 60 s leaves margin).
    let rows = firewall::run(&quick(60));
    assert_eq!(rows.len(), 9);
    assert!(firewall::fcfs_is_worst(&rows));
    // The rate-based sorted-priority disciplines keep the victim under
    // the LiT bound (HRR isolates too but plays by framing bounds).
    for r in rows
        .iter()
        .filter(|r| !matches!(r.discipline, "fcfs" | "hrr"))
    {
        assert!(
            r.max_delay < r.lit_bound,
            "{}: {} !< {}",
            r.discipline,
            r.max_delay,
            r.lit_bound
        );
    }
}

// ------------------------------------------------------------- determinism

#[test]
fn experiments_are_bit_reproducible() {
    let a = fig7::point(&quick(10), Duration::from_ms(88));
    let b = fig7::point(&quick(10), Duration::from_ms(88));
    assert_eq!(a.max_delay, b.max_delay);
    assert_eq!(a.jitter, b.jitter);
    assert_eq!(a.delivered, b.delivered);
    let mut c = quick(10);
    c.seed ^= 1;
    let d = fig7::point(&c, Duration::from_ms(88));
    assert!(d.max_delay != a.max_delay || d.delivered != a.delivered);
}

// --------------------------------------- buffer distribution bound ([6])

#[test]
fn buffer_distribution_bound_holds_empirically() {
    // The reconstruction of [6]'s distributional buffer bound: at every
    // hop, the occupancy CCDF must stay below the shifted reference-delay
    // CCDF (both measured on the same run).
    let (mut net, no_jc, jc) = common::build_cross_onoff(RunConfig::paper().seed);
    net.run_until(lit_sim::Time::from_secs(25));
    for (id, has_jc) in [(no_jc, false), (jc, true)] {
        let st = net.session_stats(id);
        let pb = lit_core::PathBounds::for_session(&net, id);
        for hop in 0..st.buffer.len() {
            for q_cells in 0..12u64 {
                let q = q_cells * 424;
                let emp = st.buffer[hop].ccdf_at(q);
                let bound = pb.buffer_ccdf_bound(|t| st.reference.ccdf_at(t), hop, has_jc, q);
                assert!(
                    emp <= bound + 1e-9,
                    "jc={has_jc} hop={hop} q={q}: emp {emp} > bound {bound}"
                );
            }
        }
    }
}

// ---------------------------------------------- approximate-queue ablation

#[test]
fn bucketed_queue_error_is_bounded_by_hops_times_bucket() {
    use lit_repro::experiments::ablation;
    let rows = ablation::run(&quick(15));
    let exact = rows[0];
    assert!(exact.bucket.is_none());
    for r in &rows[1..] {
        let bucket = r.bucket.unwrap();
        // Per hop the inversion is < bucket; end to end, < hops · bucket.
        let slack = bucket * 5;
        assert!(
            r.max_delay <= exact.max_delay + slack,
            "bucket {}: max {} vs exact {} + {}",
            bucket,
            r.max_delay,
            exact.max_delay,
            slack
        );
        assert!(
            r.jitter_jc <= exact.jitter_jc + slack,
            "bucket {}: jitter_jc {} vs {}",
            bucket,
            r.jitter_jc,
            exact.jitter_jc
        );
    }
}

// --------------------------------------------------------------- scenarios

#[test]
fn bundled_scenario_files_parse_and_run() {
    use lit_repro::scenario::Scenario;
    for file in ["scenarios/fig8_cross.scn", "scenarios/misbehaver.scn"] {
        let text = std::fs::read_to_string(file).expect(file);
        let mut sc = Scenario::parse(&text).unwrap_or_else(|e| panic!("{file}: {e}"));
        let _ = &mut sc;
        // Parsing is the contract here; running full horizons is covered
        // by the unit tests with shorter scenarios.
    }
}

#[test]
fn fig11_bound_is_tighter_than_fig10() {
    // The paper's Fig. 10 vs Fig. 11 contrast: the same low-rate session's
    // analytic bound is loose under Poisson cross traffic but tight under
    // phase-aligned CBR cross traffic (whose per-frame batches realize the
    // per-hop worst case).
    let r10 = fig9_11::run(&quick(60), fig9_11::Variant::Fig10);
    let r11 = fig9_11::run(&quick(60), fig9_11::Variant::Fig11);
    let tightness = |r: &fig9_11::DistResult| {
        let ana = r.analytic_percentile(0.001).unwrap().as_millis_f64();
        let emp = r.empirical_percentile(0.001).unwrap().as_millis_f64();
        emp / ana
    };
    let t10 = tightness(&r10);
    let t11 = tightness(&r11);
    assert!(t11 > t10 + 0.15, "fig11 {t11:.2} !>> fig10 {t10:.2}");
}

// --------------------------------------------------- heavy-tail extension

#[test]
fn heavytail_simulated_bound_holds() {
    use lit_repro::experiments::heavytail;
    let r = heavytail::run(&quick(40));
    assert!(r.delivered > 500);
    assert!(r.lateness_fraction < 1.0);
    // Pathwise ceiling respected even for infinite-variance traffic.
    assert!(r.max_excess_ps < r.shift_ps);
    for p in &r.points {
        assert!(
            p.empirical <= p.simulated_bound + 1e-12,
            "at {}: {} > {}",
            p.delay,
            p.empirical,
            p.simulated_bound
        );
    }
}

// --------------------------------------------------- heterogeneous links

#[test]
fn bounds_hold_on_heterogeneous_link_rates() {
    // The paper's formulas carry per-hop capacities C_n; exercise them
    // with three different link speeds on one route.
    use leave_in_time::core::{LitDiscipline, PathBounds};
    use leave_in_time::net::{LinkParams, NetworkBuilder, SessionId, SessionSpec};
    use leave_in_time::traffic::{PoissonSource, ShapedSource};
    use lit_sim::Time;

    let mut b = NetworkBuilder::new().seed(91);
    let mk = |rate_bps: u64| LinkParams {
        rate_bps,
        propagation: Duration::from_us(500),
        lmax_bits: 424,
    };
    let n0 = b.add_node(mk(1_536_000));
    let n1 = b.add_node(mk(768_000));
    let n2 = b.add_node(mk(3_072_000));
    let route = [n0, n1, n2];
    let tagged = b.add_session(
        SessionSpec::atm(SessionId(0), 64_000),
        &route,
        Box::new(ShapedSource::new(
            PoissonSource::new(Duration::from_ms(8), 424),
            64_000,
            2 * 424,
        )),
    );
    // Cross load sized to the slowest link.
    for n in route {
        b.add_session(
            SessionSpec::atm(SessionId(0), 600_000),
            &[n],
            Box::new(PoissonSource::new(Duration::from_us(750), 424)),
        );
    }
    let mut net = b.build(&LitDiscipline::factory());
    net.run_until(Time::from_secs(30));
    let st = net.session_stats(tagged);
    assert!(st.delivered > 1000);
    let pb = PathBounds::for_session(&net, tagged);
    let bound = pb.delay_bound_token_bucket(2 * 424);
    assert!(
        st.max_delay().unwrap() < bound,
        "{} !< {}",
        st.max_delay().unwrap(),
        bound
    );
    assert!(st.max_excess().unwrap() < pb.shift_ps());
    // β really is per-hop: it must differ from a homogeneous-T1 path's.
    let t1_hop = lit_core::HopSpec {
        link: LinkParams::paper_t1(),
        assignment: leave_in_time::net::DelayAssignment::LenOverRate,
    };
    let t1 = PathBounds::new(64_000, 424, 424, vec![t1_hop; 3]);
    assert_ne!(pb.beta(), t1.beta());
}
