//! The worker pool is a wall-clock knob, never a results knob: any
//! experiment must produce byte-identical tables for any `--threads`
//! value. Each sweep point / replica runs `f(i, items[i])` with its own
//! seed and no shared state, and results are reassembled by index — these
//! tests pin that contract end to end, through table rendering.

#![forbid(unsafe_code)]

use lit_repro::experiments::{fig7, fig8, replica_seed, run_points, RunConfig};

fn cfg(threads: usize, seconds: u64, replicas: u32) -> RunConfig {
    RunConfig {
        seconds: Some(seconds),
        seed: 7,
        threads: Some(threads),
        replicas,
    }
}

#[test]
fn fig8_csv_identical_across_thread_counts() {
    // The ISSUE's acceptance case: fig8 with pooled replicas, 1 worker vs
    // 8 workers, CSV compared byte for byte.
    let serial = fig8::run(&cfg(1, 12, 4));
    let pooled = fig8::run(&cfg(8, 12, 4));
    assert_eq!(fig8::table(&serial).to_csv(), fig8::table(&pooled).to_csv());
    assert_eq!(
        fig8::pdf_table(&serial).to_csv(),
        fig8::pdf_table(&pooled).to_csv()
    );
    assert_eq!(
        fig8::buffer_table(&serial, true).to_csv(),
        fig8::buffer_table(&pooled, true).to_csv()
    );
}

#[test]
fn fig7_sweep_identical_across_thread_counts() {
    let serial = fig7::run(&cfg(1, 8, 1));
    let pooled = fig7::run(&cfg(5, 8, 1));
    assert_eq!(fig7::table(&serial).to_csv(), fig7::table(&pooled).to_csv());
}

#[test]
fn run_points_preserves_order_and_indices() {
    let items: Vec<u64> = (0..57).collect();
    let out = run_points(&cfg(8, 1, 1), &items, |i, &x| {
        assert_eq!(i as u64, x, "item handed to the wrong index");
        x * x
    });
    assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    // Degenerate cases: empty input, more workers than items.
    let empty: Vec<u64> = Vec::new();
    assert!(run_points(&cfg(8, 1, 1), &empty, |_, &x| x).is_empty());
    assert_eq!(
        run_points(&cfg(64, 1, 1), &[1u64, 2], |_, &x| x),
        vec![1, 2]
    );
}

#[test]
fn replica_seeds_are_stable_and_distinct() {
    // Replica 0 keeps the master seed, so `--replicas 1` reproduces the
    // historical single-run results exactly.
    assert_eq!(replica_seed(7, 0), 7);
    let seeds: Vec<u64> = (0..16).map(|r| replica_seed(7, r)).collect();
    let mut unique = seeds.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), seeds.len(), "replica seeds collide");
    // And they are a pure function of (master, replica).
    assert_eq!(
        seeds,
        (0..16).map(|r| replica_seed(7, r)).collect::<Vec<_>>()
    );
}

#[test]
fn obs_shard_pooling_is_merge_order_independent() {
    // The hub pools worker shards in completion order, which varies with
    // the thread count; the exported bytes must not. Build three distinct
    // shards and pool them in opposite orders.
    use lit_obs::metrics::ObsShard;
    use lit_obs::{PacketView, Probe};
    use lit_sim::{Duration, Time};

    let mk = |seed: u64, n: u64| -> ObsShard {
        let mut p = lit_obs::ObsProbe::new(0);
        p.on_build(seed, 2, &[2]);
        for i in 0..n {
            let v = PacketView {
                session: 0,
                seq: i + 1,
                hop: 0,
                len_bits: 424,
                created: Time::ZERO,
                arrived: Time::from_us(i),
            };
            p.on_arrive(Time::from_us(i), 0, v, i as usize, 2 * i as usize);
            p.on_eligible(Time::from_us(i + 1), 0, v, Duration::from_us(seed));
            p.on_dispatch(Time::from_us(i + 1), 0, v);
            p.on_depart(Time::from_us(i + 2), 0, v, i as i64 - 3, false);
        }
        p.shard
    };

    let parts = [mk(1, 3), mk(2, 7), mk(5, 11)];
    let mut fwd = ObsShard::default();
    let mut rev = ObsShard::default();
    for s in parts.iter() {
        fwd.merge(s);
    }
    for s in parts.iter().rev() {
        rev.merge(s);
    }
    assert_eq!(fwd.to_json(), rev.to_json());
    assert_eq!(fwd.networks, 3);
    assert_eq!(fwd.nodes[0].arrivals, 21);
}
