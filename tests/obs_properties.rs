//! Property tests cross-validating the observability registry against
//! the executor's own ground-truth statistics: whatever scenario the
//! fuzzer generates, the probe's counters must agree exactly with the
//! drain stats, the per-hop dispatch totals with packets × hops, the
//! histogram populations with their sampling sites, and the violation
//! counters with the conformance oracle's count-mode totals.

#![forbid(unsafe_code)]

use lit_net::{NodeId, OracleMode};
use lit_obs::metrics::ObsShard;
use lit_obs::{trace::TraceKind, ObsProbe};
use lit_repro::fuzz;
use lit_repro::scenario::{RunOptions, Scenario};

/// Run a scenario with a metrics-only probe, drain-check the oracle, and
/// hand back the network plus the recorded shard.
fn run_with_probe(sc: &Scenario) -> (lit_net::Network, ObsShard) {
    let opts = RunOptions {
        oracle: OracleMode::Count,
        ..RunOptions::default()
    };
    let (mut net, _ids) = sc.run_probed(&opts, Some(Box::new(ObsProbe::new(0))));
    // Fold the drain-time CCDF check into the oracle totals *before*
    // finishing the probe, so both sides count the same set of checks.
    net.oracle_drain_check();
    let probe = net.take_probe().expect("probe installed");
    let shard = probe
        .as_any()
        .and_then(|a| a.downcast_ref::<ObsProbe>())
        .expect("probe downcasts to ObsProbe")
        .shard
        .clone();
    (net, shard)
}

#[test]
fn metrics_agree_with_ground_truth_on_fuzzed_scenarios() {
    for seed in 0..12u64 {
        let sc = fuzz::generate(seed);
        let (net, shard) = run_with_probe(&sc);

        let mut node_dispatches_sum = 0u64;
        for (n, obs) in shard.nodes.iter().enumerate() {
            let st = net.node_stats(NodeId(n as u32));
            // The run stops at the horizon without draining, so a node
            // may hold queued packets (arrivals > dispatches) and at
            // most one packet mid-transmission.
            assert!(
                obs.arrivals >= obs.dispatches,
                "seed {seed} node {n}: dispatches exceed arrivals"
            );
            assert!(
                obs.dispatches - obs.departures <= 1,
                "seed {seed} node {n}: more than one packet in service"
            );
            assert_eq!(
                obs.departures, st.transmitted,
                "seed {seed} node {n}: departures vs drain-stat transmitted"
            );
            assert_eq!(
                obs.served_bits, st.bits_transmitted,
                "seed {seed} node {n}: served bits vs drain-stat bits"
            );
            // Histogram populations equal their sampling sites: the
            // queue depths are sampled once per arrival, the slack once
            // per departure.
            assert_eq!(obs.eligible_depth.count(), obs.arrivals);
            assert_eq!(obs.slack_ps.count(), obs.departures);
            node_dispatches_sum += obs.dispatches;
        }
        let total_arrivals: u64 = shard.nodes.iter().map(|n| n.arrivals).sum();
        assert_eq!(shard.event_depth.count(), total_arrivals);

        let mut hop_dispatches_sum = 0u64;
        let mut node_served: u64 = shard.nodes.iter().map(|n| n.served_bits).sum();
        for (s, obs) in shard.sessions.iter().enumerate() {
            let st = net.session_stats(lit_net::SessionId(s as u32));
            assert_eq!(
                obs.delivered, st.delivered,
                "seed {seed} session {s}: delivered vs drain stats"
            );
            // Hops are traversed in order, so per-hop dispatch counts
            // are non-increasing along the route, and a fully delivered
            // packet was dispatched once at every hop.
            let mut prev = u64::MAX;
            for (h, hop) in obs.hops.iter().enumerate() {
                assert!(
                    hop.dispatches <= prev,
                    "seed {seed} session {s} hop {h}: dispatches increase along route"
                );
                assert!(
                    hop.dispatches >= st.delivered,
                    "seed {seed} session {s} hop {h}: delivered packets skipped a hop"
                );
                assert_eq!(hop.holding_ps.count(), hop.held);
                assert!(hop.held <= hop.dispatches + 1);
                hop_dispatches_sum += hop.dispatches;
                prev = hop.dispatches;
            }
            node_served = node_served.saturating_sub(obs.served_bits);
        }
        // Every dispatch belongs to exactly one (session, hop), and all
        // served bits are attributed to a session.
        assert_eq!(
            hop_dispatches_sum, node_dispatches_sum,
            "seed {seed}: per-hop dispatches do not partition node dispatches"
        );
        assert_eq!(
            node_served, 0,
            "seed {seed}: served bits not fully attributed"
        );

        // Oracle equality: the probe's violation counters are fed by the
        // same call sites that bump the oracle's count-mode totals.
        assert_eq!(
            shard.violation_total(),
            net.oracle_violations(),
            "seed {seed}: probe violations vs oracle totals"
        );
        assert_eq!(shard.networks, 1);
    }
}

#[test]
fn held_counter_matches_eligible_events_with_positive_holding() {
    // Directed case: a jitter-controlled 32 kb/s session misbehaves by
    // dumping 100 back-to-back cells. The entry server admits them as
    // they come (eq. 6: E¹ = a¹), but with delay-jitter control each
    // cell carries its upstream slack Aⁿ (eq. 8–9) and the second hop's
    // regulator holds it for exactly that long — so nearly every burst
    // cell is held there, and the `held` counter must equal the number
    // of `eligible` trace events (which fire only for E > arrival).
    let text = "nodes 2 rate=1536000 prop=1ms lmax=424\n\
                discipline lit\n\
                seed 3\n\
                session route=0..1 rate=32000 jc source=burst(period=50ms,count=100,len=424)\n\
                run 1s\n";
    let sc = Scenario::parse(text).expect("parse burst scenario");
    let opts = RunOptions {
        oracle: OracleMode::Count,
        ..RunOptions::default()
    };
    let (mut net, _ids) = sc.run_probed(&opts, Some(Box::new(ObsProbe::new(1 << 16))));
    let probe = net.take_probe().expect("probe installed");
    let obs = probe
        .as_any()
        .and_then(|a| a.downcast_ref::<ObsProbe>())
        .expect("downcast");

    let held: u64 = obs.shard.sessions[0].hops.iter().map(|h| h.held).sum();
    assert!(held > 50, "burst should be regulated, held = {held}");

    assert_eq!(
        obs.trace.dropped(),
        0,
        "ring too small for the directed case; grow the cap"
    );
    let events = obs.trace.events();
    let eligible = events
        .iter()
        .filter(|e| e.kind == TraceKind::Eligible)
        .count() as u64;
    assert_eq!(held, eligible, "held counter vs eligible trace events");
    assert!(
        events
            .iter()
            .filter(|e| e.kind == TraceKind::Eligible)
            .all(|e| e.aux_ps > 0),
        "eligible events must carry a positive holding time"
    );

    // Holding-time histogram totals agree with the trace too.
    let hist_count: u64 = obs.shard.sessions[0]
        .hops
        .iter()
        .map(|h| h.holding_ps.count())
        .sum();
    assert_eq!(hist_count, held);
}

#[test]
fn violation_counters_match_oracle_with_impossible_bounds() {
    // Force violations deterministically: run a plain CBR session under
    // Leave-in-Time, then install an impossible pathwise bound so the
    // oracle flags every delivery. Probe counters and oracle totals must
    // stay in lockstep, and the trace must carry the inequality label.
    use lit_net::SessionBounds;

    let text = "nodes 2 rate=1536000 prop=1ms lmax=424\n\
                discipline lit\n\
                seed 5\n\
                session route=0..1 rate=32000 source=cbr(gap=13.25ms,len=424)\n\
                run 1s\n";
    // Scenario::run_probed installs the paper bounds; rebuild the bound
    // afterwards with an impossible shift. The horizon-limited run is
    // violation-free, so any counts below come from the drain check.
    let sc = Scenario::parse(text).expect("parse cbr scenario");
    let opts = RunOptions {
        oracle: OracleMode::Count,
        ..RunOptions::default()
    };
    let (mut net, ids) = sc.run_probed(&opts, Some(Box::new(ObsProbe::new(4096))));
    assert_eq!(net.oracle_violations(), 0, "conforming run must be clean");

    net.set_session_bounds(
        ids[0],
        SessionBounds {
            shift_ps: -1_000_000_000_000,
            jitter_spread_ps: i128::MAX / 2,
        },
    );
    let drain_violations = net.oracle_drain_check();
    assert!(
        drain_violations > 0,
        "impossible bound must trip the CCDF check"
    );

    let probe = net.take_probe().expect("probe installed");
    let obs = probe
        .as_any()
        .and_then(|a| a.downcast_ref::<ObsProbe>())
        .expect("downcast");
    assert_eq!(obs.shard.violation_total(), net.oracle_violations());
    assert_eq!(
        obs.shard.violation_total(),
        drain_violations,
        "all violations in this run come from the drain check"
    );
    // The shard keys violations by inequality label, and the trace tags
    // each violation event with the same label.
    let ccdf_label = "ccdf-bound (ineq. 16)";
    assert_eq!(
        obs.shard.violations.get(ccdf_label).copied(),
        Some(drain_violations),
        "violations keyed by the violated inequality"
    );
    assert!(
        obs.trace
            .events()
            .iter()
            .any(|e| e.kind == TraceKind::Violation && e.tag == ccdf_label),
        "violation trace event carries the inequality label"
    );
}
