//! Long-haul stress test (opt-in: `cargo test --release -- --ignored`).
//!
//! Runs the full 116-session MIX network for 10 simulated minutes — on the
//! order of 25 million events — and re-checks every invariant the shorter
//! suites assert: bounds for *all* sessions, conservation, non-saturation,
//! and bit-reproducibility of the summary.

#![forbid(unsafe_code)]

use lit_repro::experiments::common::build_mix_one_class;
use lit_sim::{Duration, Time};

#[test]
#[ignore = "long: ~25M events; run with --release -- --ignored"]
fn mix_full_horizon_all_invariants() {
    let run = || {
        let (mut net, _) = build_mix_one_class(Duration::from_us(6_500), 424_242);
        net.run_until(Time::from_secs(600));
        let mut summary = Vec::new();
        for i in 0..net.num_sessions() {
            let id = lit_net::SessionId(i as u32);
            let st = net.session_stats(id);
            assert!(st.delivered > 0, "session {i} starved");
            assert!(
                st.injected - st.delivered < 64,
                "session {i}: {} in flight at horizon",
                st.injected - st.delivered
            );
            let pb = lit_core::PathBounds::for_session(&net, id);
            // Pathwise ineq. (12) for every delivered packet.
            assert!(
                st.max_excess().unwrap() < pb.shift_ps(),
                "session {i}: excess {} !< {}",
                st.max_excess().unwrap(),
                pb.shift_ps()
            );
            // Token-bucket delay bound (sources emit at most one cell per
            // L/r while ON).
            let bound = pb.delay_bound_token_bucket(424);
            assert!(st.max_delay().unwrap() < bound, "session {i}");
            summary.push((st.delivered, st.max_delay(), st.jitter()));
        }
        // Non-saturation at every node.
        let lmax = lit_net::LinkParams::paper_t1().lmax_time().as_ps() as i128;
        for n in 0..net.num_nodes() {
            let l = net
                .node_stats(lit_net::NodeId(n as u32))
                .max_lateness()
                .unwrap();
            assert!(l < lmax, "node {n}: lateness {l}");
        }
        summary
    };
    assert_eq!(run(), run(), "full-horizon run not reproducible");
}
