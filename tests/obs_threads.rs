//! Thread-count determinism for the *pooled* observability exports.
//!
//! `tests/threads_determinism.rs` pins the experiment tables; this
//! binary pins the observability side: with the global hub armed, a
//! pooled-replica experiment must export byte-identical metrics JSON,
//! Chrome trace JSON, and trace JSONL for any `--threads` value. The hub
//! is process-global state, so this stays a single `#[test]` in its own
//! integration-test binary — nothing else can race the flags.

#![forbid(unsafe_code)]

use lit_repro::experiments::{fig8, RunConfig};

fn run_pooled(threads: usize) -> (String, String, String) {
    lit_obs::hub::reset();
    let cfg = RunConfig {
        seconds: Some(6),
        seed: 7,
        threads: Some(threads),
        replicas: 4,
    };
    let _ = fig8::run(&cfg);
    (
        lit_obs::hub::metrics_json(),
        lit_obs::hub::chrome_trace_json(),
        lit_obs::hub::trace_jsonl(),
    )
}

#[test]
fn pooled_obs_exports_identical_across_thread_counts() {
    lit_obs::hub::set_global(true, true);
    lit_obs::hub::set_trace_cap(256);

    let (m1, c1, j1) = run_pooled(1);
    let (m4, c4, j4) = run_pooled(4);

    lit_obs::hub::set_global(false, false);
    lit_obs::hub::reset();

    // Sanity: the hub actually collected something before we compare.
    assert!(m1.contains("\"networks\""), "metrics export empty");
    let nets: u64 = lit_obs::json::Value::parse(&m1)
        .ok()
        .and_then(|v| v.get("networks").and_then(|n| n.as_f64()))
        .map(|n| n as u64)
        .unwrap_or(0);
    assert!(nets > 0, "no replica submitted a shard to the hub");
    assert!(c1.contains("traceEvents"), "chrome trace export empty");
    assert!(!j1.is_empty(), "jsonl trace export empty");

    assert_eq!(m1, m4, "pooled metrics JSON depends on thread count");
    assert_eq!(c1, c4, "pooled Chrome trace depends on thread count");
    assert_eq!(j1, j4, "pooled trace JSONL depends on thread count");
}
