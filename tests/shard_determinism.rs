//! The shard count is a wall-clock knob, never a results knob: building
//! the same network with `--shards 1..=8` must produce byte-identical
//! statistics, delivery logs, event counts and oracle verdicts. `1` runs
//! the scalar engine, `≥2` the lookahead-windowed sharded engine, so
//! these tests pin scalar ≡ sharded(k) for every admissible `k` end to
//! end, Debug-formatted and compared as strings.

#![forbid(unsafe_code)]

use leave_in_time::core::{install_oracle_bounds, LitDiscipline};
use leave_in_time::net::{
    DelayAssignment, LinkParams, NetworkBuilder, NodeId, OracleConfig, OracleMode,
    RegulatorBackend, SessionId, SessionSpec, StatsConfig,
};
use leave_in_time::sim::{Duration, Time};
use leave_in_time::traffic::{DeterministicSource, PoissonSource};
use lit_repro::scenario::{RunOptions, Scenario};

/// Serializes the tests that assert on the process-global fallback
/// counter (`shard_fallbacks`), which every builder in this binary feeds.
static FALLBACK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn stats_cfg() -> StatsConfig {
    StatsConfig {
        delivery_log_cap: 64,
        ..StatsConfig::default()
    }
}

/// Everything a user can observe about a finished network, as one string.
fn fingerprint(net: &mut leave_in_time::net::Network) -> String {
    let mut out = String::new();
    let drain_failures = net.oracle_drain_check();
    for i in 0..net.num_sessions() {
        let st = net.session_stats(SessionId(i as u32));
        out.push_str(&format!("session {i}: {st:?}\n"));
    }
    for n in 0..net.num_nodes() {
        let st = net.node_stats(NodeId(n as u32));
        out.push_str(&format!("node {n}: {st:?}\n"));
    }
    out.push_str(&format!(
        "events {} oracle {:?} drain {}\n",
        net.event_count(),
        net.oracle_totals(),
        drain_failures
    ));
    out
}

/// The 16-node fat tandem of the scale benchmark: every session rides the
/// full route, sources staggered so no two network events ever share an
/// instant (which is what makes scalar FIFO order and the sharded
/// engine's canonical order agree event for event).
fn fat_tandem(shards: usize, oracle: bool) -> leave_in_time::net::Network {
    let mut b = NetworkBuilder::new()
        .seed(42)
        .shards(shards)
        .stats(stats_cfg());
    if oracle {
        b = b.oracle(OracleConfig::new(OracleMode::Count));
    }
    let nodes = b.tandem(16, LinkParams::paper_t1());
    for i in 0..6u64 {
        let spec = SessionSpec::atm(SessionId(0), 32_000).with_jitter_control();
        b.add_session(
            spec,
            &nodes,
            Box::new(
                DeterministicSource::new(Duration::from_us(13_250), 424)
                    .with_offset(Duration::from_ns(1 + i * 37)),
            ),
        );
    }
    for i in 0..4u64 {
        let spec = SessionSpec::atm(SessionId(0), 64_000);
        b.add_session(
            spec,
            &nodes[(i as usize % 3)..],
            Box::new(PoissonSource::new(Duration::from_us(9_000), 424)),
        );
    }
    let mut net = b.build(&|l| Box::new(LitDiscipline::new(*l)) as _);
    if oracle {
        install_oracle_bounds(&mut net);
    }
    net
}

/// A fan-in tree: two staggered tandem branches merging into a shared
/// trunk, so cross-shard handoffs from *different* shards target the
/// same node and the drain order of the mailboxes is actually exercised.
fn fan_in(shards: usize) -> leave_in_time::net::Network {
    let mut b = NetworkBuilder::new()
        .seed(7)
        .shards(shards)
        .stats(stats_cfg());
    let left: Vec<NodeId> = (0..4).map(|_| b.add_node(LinkParams::paper_t1())).collect();
    let right: Vec<NodeId> = (0..4).map(|_| b.add_node(LinkParams::paper_t1())).collect();
    let trunk: Vec<NodeId> = (0..4)
        .map(|_| {
            b.add_node(LinkParams {
                rate_bps: 3_072_000,
                ..LinkParams::paper_t1()
            })
        })
        .collect();
    for (i, branch) in [&left, &right].into_iter().enumerate() {
        for j in 0..3u64 {
            let route: Vec<NodeId> = branch.iter().chain(trunk.iter()).copied().collect();
            let spec = SessionSpec::atm(SessionId(0), 32_000)
                .with_delay(DelayAssignment::LenOverRate)
                .with_jitter_control();
            b.add_session(
                spec,
                &route,
                Box::new(
                    DeterministicSource::new(Duration::from_us(13_250), 424)
                        .with_offset(Duration::from_ns(1 + (i as u64) * 101 + j * 37)),
                ),
            );
        }
    }
    b.build(&|l| Box::new(LitDiscipline::new(*l)) as _)
}

/// The fat tandem again, but under the interleaved (shared per-hop
/// FIFO) regulator with the counting oracle armed. The per-session
/// bounds of ineq. 12/17 are dedicated-regulator results, so
/// `install_oracle_bounds` is deliberately NOT called here; the
/// regulator-FIFO, shaping-bound and work-conservation checks still run
/// and must count identically on every engine.
fn interleaved_tandem(shards: usize) -> leave_in_time::net::Network {
    let mut b = NetworkBuilder::new()
        .seed(42)
        .shards(shards)
        .stats(stats_cfg())
        .regulator(RegulatorBackend::Interleaved)
        .oracle(OracleConfig::new(OracleMode::Count));
    let nodes = b.tandem(16, LinkParams::paper_t1());
    for i in 0..6u64 {
        let spec = SessionSpec::atm(SessionId(0), 32_000).with_jitter_control();
        b.add_session(
            spec,
            &nodes,
            Box::new(
                DeterministicSource::new(Duration::from_us(13_250), 424)
                    .with_offset(Duration::from_ns(1 + i * 37)),
            ),
        );
    }
    for i in 0..4u64 {
        let spec = SessionSpec::atm(SessionId(0), 64_000);
        b.add_session(
            spec,
            &nodes[(i as usize % 3)..],
            Box::new(PoissonSource::new(Duration::from_us(9_000), 424)),
        );
    }
    b.build(&|l| Box::new(LitDiscipline::new(*l)) as _)
}

#[test]
fn fat_tandem_identical_across_shard_counts() {
    let horizon = Time::from_ms(1_500);
    let mut baseline = fat_tandem(1, false);
    assert_eq!(baseline.shard_count(), 1, "shards(1) must run scalar");
    baseline.run_until(horizon);
    let want = fingerprint(&mut baseline);
    for shards in 2..=8usize {
        let mut net = fat_tandem(shards, false);
        assert!(net.shard_count() > 1, "{shards} shards degraded to scalar");
        net.run_until(horizon);
        assert_eq!(
            fingerprint(&mut net),
            want,
            "results diverged at {shards} shards"
        );
    }
}

#[test]
fn fat_tandem_oracle_counts_identical_across_shard_counts() {
    let horizon = Time::from_ms(1_000);
    let mut baseline = fat_tandem(1, true);
    baseline.run_until(horizon);
    let want = fingerprint(&mut baseline);
    for shards in [2usize, 4, 8] {
        let mut net = fat_tandem(shards, true);
        assert!(net.shard_count() > 1, "{shards} shards degraded to scalar");
        net.run_until(horizon);
        assert_eq!(
            fingerprint(&mut net),
            want,
            "oracle-mode results diverged at {shards} shards"
        );
    }
}

#[test]
fn interleaved_regulator_identical_across_shard_counts() {
    let horizon = Time::from_ms(1_000);
    let mut baseline = interleaved_tandem(1);
    assert_eq!(baseline.shard_count(), 1, "shards(1) must run scalar");
    baseline.run_until(horizon);
    let want = fingerprint(&mut baseline);
    for shards in 2..=8usize {
        let mut net = interleaved_tandem(shards);
        assert!(net.shard_count() > 1, "{shards} shards degraded to scalar");
        net.run_until(horizon);
        assert_eq!(
            fingerprint(&mut net),
            want,
            "interleaved-regulator results diverged at {shards} shards"
        );
    }
}

/// Full `.scn` scenarios driven through the `RunOptions` shard
/// override: oracle counts and every visible statistic must match the
/// scalar run at every shard count. `misbehaver.scn` is hand-written
/// with a single node (sharding degrades to scalar there and bumps the
/// process-global fallback counter — hence the lock); the generated
/// tandem expands to 36 sessions over 8 nodes and genuinely shards.
#[test]
fn scenarios_match_scalar_across_shard_counts() {
    let _guard = FALLBACK_LOCK.lock().unwrap();
    for (file, horizon_ms) in [("misbehaver.scn", 2_000u64), ("gen_tandem_ladder.scn", 400)] {
        let path = format!("{}/scenarios/{file}", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let sc = Scenario::parse(&text)
            .unwrap_or_else(|e| panic!("{file}: {e}"))
            .with_horizon(Duration::from_ms(horizon_ms));
        let run = |shards: usize| {
            let (mut net, _ids) = sc.run_opts(&RunOptions {
                oracle: OracleMode::Count,
                stats: Some(stats_cfg()),
                shards: Some(shards),
                ..RunOptions::default()
            });
            fingerprint(&mut net)
        };
        let want = run(1);
        for shards in 2..=8usize {
            assert_eq!(run(shards), want, "{file} diverged at {shards} shards");
        }
    }
}

#[test]
fn fan_in_identical_across_shard_counts() {
    let horizon = Time::from_ms(1_500);
    let mut baseline = fan_in(1);
    baseline.run_until(horizon);
    let want = fingerprint(&mut baseline);
    for shards in 2..=8usize {
        let mut net = fan_in(shards);
        net.run_until(horizon);
        assert_eq!(
            fingerprint(&mut net),
            want,
            "fan-in results diverged at {shards} shards"
        );
    }
}

#[test]
fn repeated_run_until_segments_match_one_shot() {
    // Windowed execution must be insensitive to where `run_until` stops:
    // many short horizons = one long horizon.
    let mut one_shot = fat_tandem(4, false);
    one_shot.run_until(Time::from_ms(1_000));
    let want = fingerprint(&mut one_shot);
    let mut stepped = fat_tandem(4, false);
    for step in 1..=10u64 {
        stepped.run_until(Time::from_ms(step * 100));
    }
    assert_eq!(fingerprint(&mut stepped), want);
}

/// Test discipline that panics on every arrival past a global limit.
struct PanicAfter {
    seen: std::sync::Arc<std::sync::atomic::AtomicU64>,
    limit: u64,
}

impl leave_in_time::net::Discipline for PanicAfter {
    fn name(&self) -> &'static str {
        "panic-after"
    }
    fn register_session(&mut self, _: &SessionSpec, _: &DelayAssignment) {}
    fn on_arrival(
        &mut self,
        pkt: &mut leave_in_time::net::Packet,
        now: Time,
    ) -> leave_in_time::net::ScheduleDecision {
        use std::sync::atomic::Ordering;
        if self.seen.fetch_add(1, Ordering::Relaxed) + 1 >= self.limit {
            panic!("injected discipline failure");
        }
        pkt.deadline = now;
        leave_in_time::net::ScheduleDecision::at(now, now)
    }
    fn on_departure(&mut self, _: &mut leave_in_time::net::Packet, _: Time) {}
}

#[test]
fn sharded_worker_panic_propagates_to_caller() {
    // A discipline panicking mid-window on one shard must resurface via
    // resume_unwind on the calling thread — never strand sibling shards
    // on a window barrier. The worker loop's only exits are barrier-
    // aligned (tmin from the common barrier-A snapshot; abort checked
    // only after barrier B), so this completes instead of deadlocking.
    let seen = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let result = std::panic::catch_unwind({
        let seen = std::sync::Arc::clone(&seen);
        move || {
            let mut b = NetworkBuilder::new().seed(9).shards(4).stats(stats_cfg());
            let nodes = b.tandem(8, LinkParams::paper_t1());
            for i in 0..4u64 {
                b.add_session(
                    SessionSpec::atm(SessionId(0), 64_000),
                    &nodes,
                    Box::new(
                        DeterministicSource::new(Duration::from_us(6_625), 424)
                            .with_offset(Duration::from_ns(1 + i * 37)),
                    ),
                );
            }
            let mut net = b.build(&|_l| {
                Box::new(PanicAfter {
                    seen: std::sync::Arc::clone(&seen),
                    limit: 200,
                }) as _
            });
            assert!(net.shard_count() > 1, "panic test needs the sharded engine");
            net.run_until(Time::from_secs(5));
        }
    });
    let payload = result.expect_err("injected panic must propagate");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert!(
        msg.contains("injected discipline failure"),
        "unexpected panic payload: {msg:?}"
    );
}

#[test]
fn probe_forces_scalar_engine() {
    // Satellite guard: an installed probe must degrade sharding to the
    // scalar engine (probes hook the global dispatch order) — and the
    // degrade must not be silent: it bumps the process-global fallback
    // counter so harnesses can tell which engine a run measured. The
    // counter is process-global, so the tests that touch it serialize
    // on FALLBACK_LOCK and assert deltas, not absolutes.
    let _guard = FALLBACK_LOCK.lock().unwrap();
    let before = leave_in_time::net::shard::shard_fallbacks();
    let mut b = NetworkBuilder::new().seed(1).shards(8);
    let nodes = b.tandem(8, LinkParams::paper_t1());
    b.add_session(
        SessionSpec::atm(SessionId(0), 32_000),
        &nodes,
        Box::new(DeterministicSource::paper_cbr()),
    );
    let net = b
        .probe(Box::new(leave_in_time::net::NoopProbe))
        .build(&|l| Box::new(LitDiscipline::new(*l)) as _);
    assert_eq!(net.shard_count(), 1);
    assert!(
        leave_in_time::net::shard::shard_fallbacks() > before,
        "probe fallback must be counted"
    );
}

#[test]
fn zero_propagation_forces_scalar_engine_and_is_counted() {
    // Zero propagation on a cross-shard hop means zero lookahead — no
    // conservative window exists, so the build degrades to scalar and
    // records the fallback.
    let _guard = FALLBACK_LOCK.lock().unwrap();
    let before = leave_in_time::net::shard::shard_fallbacks();
    let zero_prop = LinkParams {
        propagation: Duration::ZERO,
        ..LinkParams::paper_t1()
    };
    let mut b = NetworkBuilder::new().seed(2).shards(8);
    let nodes = b.tandem(8, zero_prop);
    b.add_session(
        SessionSpec::atm(SessionId(0), 32_000),
        &nodes,
        Box::new(DeterministicSource::paper_cbr()),
    );
    let net = b.build(&|l| Box::new(LitDiscipline::new(*l)) as _);
    assert_eq!(net.shard_count(), 1);
    assert!(
        leave_in_time::net::shard::shard_fallbacks() > before,
        "zero-lookahead fallback must be counted"
    );

    // A sharded build that is admissible must NOT bump the counter.
    let counted = leave_in_time::net::shard::shard_fallbacks();
    let net = fat_tandem(4, false);
    assert!(net.shard_count() > 1);
    assert_eq!(
        leave_in_time::net::shard::shard_fallbacks(),
        counted,
        "an admissible sharded build is not a fallback"
    );
}
