//! Golden snapshots of the observability exports: the committed
//! scenarios run with a local recording probe, and the metrics JSON plus
//! the head/tail of the trace are compared byte-for-byte against files
//! under `tests/golden/`. Any change to what the probes record, how the
//! histograms bin, or how the exporters serialize shows up as a golden
//! diff that has to be reviewed and regenerated deliberately:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test obs_snapshot
//! ```

#![forbid(unsafe_code)]

use lit_obs::{trace, ObsProbe};
use lit_repro::scenario::{RunOptions, Scenario};
use lit_sim::Duration;
use std::path::PathBuf;

/// Trace events kept verbatim at each end of the snapshot.
const SNAP_EVENTS: usize = 20;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// Run one committed scenario (horizon shortened to keep the test fast)
/// with a local tracing probe and render the snapshot text: the full
/// metrics JSON, then the first and last `SNAP_EVENTS` trace lines.
fn snapshot(scn: &str) -> String {
    let text = std::fs::read_to_string(repo_path(&format!("scenarios/{scn}")))
        .unwrap_or_else(|e| panic!("read scenarios/{scn}: {e}"));
    let sc = Scenario::parse(&text)
        .unwrap_or_else(|e| panic!("parse scenarios/{scn}: {e:?}"))
        .with_horizon(Duration::from_ms(2_000));
    let (mut net, _ids) =
        sc.run_probed(&RunOptions::default(), Some(Box::new(ObsProbe::new(4096))));
    let probe = net.take_probe().expect("probe installed");
    let obs = probe
        .as_any()
        .and_then(|a| a.downcast_ref::<ObsProbe>())
        .expect("probe downcasts to ObsProbe");

    let mut out = String::new();
    out.push_str(&obs.shard.to_json());
    out.push('\n');
    out.push_str(&format!(
        "## trace: {} events total, first {SNAP_EVENTS}\n",
        obs.trace.total()
    ));
    for e in obs.trace.first_n(SNAP_EVENTS) {
        out.push_str(&trace::jsonl_line(&e));
        out.push('\n');
    }
    out.push_str(&format!("## trace: last {SNAP_EVENTS}\n"));
    for e in obs.trace.last_n(SNAP_EVENTS) {
        out.push_str(&trace::jsonl_line(&e));
        out.push('\n');
    }
    out
}

fn check_golden(scn: &str, golden: &str) {
    let got = snapshot(scn);
    // The exports must be a pure function of the scenario: two runs in
    // the same process yield the same bytes before we ever diff goldens.
    assert_eq!(got, snapshot(scn), "{scn}: snapshot not deterministic");

    let path = repo_path(&format!("tests/golden/{golden}"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e}; run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "{scn}: observability snapshot drifted from tests/golden/{golden}; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn fig8_cross_obs_snapshot_matches_golden() {
    check_golden("fig8_cross.scn", "fig8_cross.obs.txt");
}

#[test]
fn misbehaver_obs_snapshot_matches_golden() {
    check_golden("misbehaver.scn", "misbehaver.obs.txt");
}
