//! Property-based tests for the workspace's core invariants — DESIGN.md §6.
//!
//! Each property drives the real network executor with arbitrary traffic
//! and checks a theorem of the paper (or a structural invariant of the
//! implementation) on the outcome. Debug assertions inside the scheduler
//! (`A ≥ 0`, `F̂ < F + L_MAX/C`) are active here as well, so every run
//! doubles as a regulator-invariant check.
//!
//! Case count: `PROPTEST_CASES` env var (default 24; the nightly CI job
//! sets 256). A failing case prints its seed — replay with
//! `LIT_PROP_SEED=<seed>`. Regression seeds found by the differential
//! fuzz harness (`fuzz_diff`) get pinned via `check_with`.

#![forbid(unsafe_code)]

use leave_in_time::baselines::VirtualClockDiscipline;
use leave_in_time::core::{install_oracle_bounds, Ac3Admission, LitDiscipline, PathBounds};
use leave_in_time::net::{
    DelayAssignment, LinkParams, NetworkBuilder, OracleConfig, OracleMode, SessionId, SessionSpec,
};
use leave_in_time::prelude::*;
use leave_in_time::traffic::{ShapedSource, Source, TokenBucket, TraceSource};
use lit_prop::{check, Gen};

/// An arbitrary packet trace: cumulative arrival times (ps gaps up to
/// 50 ms) and lengths 1..=424 bits.
fn gen_trace(g: &mut Gen, max_len: usize) -> Vec<(Time, u32)> {
    let n = g.size(1, max_len);
    let mut t = Time::ZERO;
    (0..n)
        .map(|_| {
            t += Duration::from_ps(g.below(50_000_000_000));
            (t, g.range(1, 425) as u32)
        })
        .collect()
}

/// The paper's special-case claim: Leave-in-Time with one class,
/// `d = L/r`, and no jitter control *is* VirtualClock — for arbitrary
/// traffic, not just the paper's source models.
#[test]
fn lit_reduces_to_virtualclock() {
    check("lit_reduces_to_virtualclock", |g| {
        let n_traces = g.size(1, 4);
        let traces: Vec<Vec<(Time, u32)>> = (0..n_traces).map(|_| gen_trace(g, 40)).collect();
        let hops = g.size(1, 4);
        let run = |vc: bool| {
            let mut b = NetworkBuilder::new().seed(1);
            let nodes = b.tandem(hops, LinkParams::paper_t1());
            let n = traces.len();
            let mut ids = Vec::new();
            for (i, tr) in traces.iter().enumerate() {
                let rate = 1_536_000 / n as u64 / (i as u64 + 1);
                ids.push(b.add_session(
                    SessionSpec::atm(SessionId(0), rate),
                    &nodes,
                    Box::new(TraceSource::from_pairs(tr.clone())),
                ));
            }
            let mut net = if vc {
                b.build(&|_: &LinkParams| Box::new(VirtualClockDiscipline::new()))
            } else {
                b.build(&LitDiscipline::factory())
            };
            net.run_until(Time::from_secs(3_000));
            ids.into_iter()
                .map(|id| {
                    let st = net.session_stats(id);
                    (st.delivered, st.max_delay(), st.jitter(), st.mean_delay())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    });
}

/// Pathwise ineq. (12): for token-bucket-shaped arbitrary traffic,
/// every packet's end-to-end delay stays below
/// `b₀/r + β + α` — and the per-packet excess over the reference
/// server stays below `β + α`. The conformance oracle runs in `Panic`
/// mode throughout, so every regulator invariant is checked per packet.
#[test]
fn delay_bound_holds_for_shaped_arbitrary_traffic() {
    check("delay_bound_holds_for_shaped_arbitrary_traffic", |g| {
        let trace = gen_trace(g, 60);
        let cross = gen_trace(g, 60);
        let hops = g.size(1, 4);
        let rate = g.range(16_000, 400_000);
        let depth_cells = g.range(1, 6);
        let jc = g.bool();
        let b0 = depth_cells * 424;
        let mut b = NetworkBuilder::new()
            .seed(2)
            .oracle(OracleConfig::new(OracleMode::Panic));
        let nodes = b.tandem(hops, LinkParams::paper_t1());
        let mut spec = SessionSpec::atm(SessionId(0), rate);
        spec.jitter_control = jc;
        spec.min_len_bits = 1; // traces carry lengths in 1..=424
        let tagged = b.add_session(
            spec,
            &nodes,
            Box::new(ShapedSource::new(TraceSource::from_pairs(trace), rate, b0)),
        );
        // Arbitrary (unshaped, possibly misbehaving) cross traffic with
        // the remaining reservation.
        let cross_rate = 1_536_000 - rate;
        b.add_session(
            SessionSpec::atm(SessionId(0), cross_rate),
            &nodes,
            Box::new(TraceSource::from_pairs(cross)),
        );
        let mut net = b.build(&LitDiscipline::factory());
        install_oracle_bounds(&mut net);
        net.run_until(Time::from_secs(3_000));

        let st = net.session_stats(tagged);
        assert!(st.delivered > 0);
        let pb = PathBounds::for_session(&net, tagged);
        let bound = pb.delay_bound_token_bucket(b0);
        assert!(
            st.max_delay().unwrap() < bound,
            "max {} !< bound {}",
            st.max_delay().unwrap(),
            bound
        );
        assert!(st.max_excess().unwrap() < pb.shift_ps());
        // Scheduler saturation is impossible under valid reservations.
        for n in 0..net.num_nodes() {
            if let Some(l) = net.node_stats(lit_net::NodeId(n as u32)).max_lateness() {
                assert!(
                    l < LinkParams::paper_t1().lmax_time().as_ps() as i128,
                    "lateness {l}"
                );
            }
        }
        assert_eq!(net.oracle_violations(), 0);
    });
}

/// Jitter bound (ineq. 17) for shaped traffic, with and without
/// delay-jitter control.
#[test]
fn jitter_bound_holds_for_shaped_arbitrary_traffic() {
    check("jitter_bound_holds_for_shaped_arbitrary_traffic", |g| {
        let trace = gen_trace(g, 60);
        let cross = gen_trace(g, 60);
        let hops = g.size(2, 5);
        let jc = g.bool();
        let (rate, b0) = (32_000u64, 424u64);
        let mut b = NetworkBuilder::new().seed(3);
        let nodes = b.tandem(hops, LinkParams::paper_t1());
        let mut spec = SessionSpec::atm(SessionId(0), rate);
        spec.jitter_control = jc;
        spec.min_len_bits = 1; // traces carry lengths in 1..=424
        let tagged = b.add_session(
            spec,
            &nodes,
            Box::new(ShapedSource::new(TraceSource::from_pairs(trace), rate, b0)),
        );
        b.add_session(
            SessionSpec::atm(SessionId(0), 1_400_000),
            &nodes,
            Box::new(TraceSource::from_pairs(cross)),
        );
        let mut net = b.build(&LitDiscipline::factory());
        net.run_until(Time::from_secs(3_000));
        let st = net.session_stats(tagged);
        assert!(st.delivered > 0);
        let pb = PathBounds::for_session(&net, tagged);
        let dref = Duration::from_bits_at_rate(b0, rate);
        let bound = pb.jitter_bound(dref, jc);
        assert!(
            st.jitter().unwrap() < bound,
            "jitter {} !< bound {} (jc={jc})",
            st.jitter().unwrap(),
            bound
        );
    });
}

/// Buffer bounds hold per hop for shaped traffic.
#[test]
fn buffer_bounds_hold_for_shaped_arbitrary_traffic() {
    check("buffer_bounds_hold_for_shaped_arbitrary_traffic", |g| {
        let trace = gen_trace(g, 60);
        let hops = g.size(1, 5);
        let depth_cells = g.range(1, 6);
        let (rate, b0) = (64_000u64, depth_cells * 424);
        let mut b = NetworkBuilder::new().seed(4);
        let nodes = b.tandem(hops, LinkParams::paper_t1());
        let mut spec = SessionSpec::atm(SessionId(0), rate);
        spec.min_len_bits = 1; // traces carry lengths in 1..=424
        let tagged = b.add_session(
            spec,
            &nodes,
            Box::new(ShapedSource::new(TraceSource::from_pairs(trace), rate, b0)),
        );
        let mut net = b.build(&LitDiscipline::factory());
        net.run_until(Time::from_secs(3_000));
        let st = net.session_stats(tagged);
        let pb = PathBounds::for_session(&net, tagged);
        let dref = Duration::from_bits_at_rate(b0, rate);
        for hop in 0..hops {
            assert!(
                st.buffer[hop].max_bits() <= pb.buffer_bound_bits(dref, hop, false),
                "hop {hop}: {} > {}",
                st.buffer[hop].max_bits(),
                pb.buffer_bound_bits(dref, hop, false)
            );
        }
    });
}

/// The token-bucket shaper's output always conforms to its bucket.
#[test]
fn shaper_output_conforms() {
    check("shaper_output_conforms", |g| {
        let trace = gen_trace(g, 80);
        let rate = g.range(1_000, 2_000_000);
        let depth_cells = g.range(1, 8);
        let b0 = depth_cells * 424;
        let mut shaped = ShapedSource::new(TraceSource::from_pairs(trace), rate, b0);
        let mut checker = TokenBucket::new(rate, b0);
        let mut rng = SimRng::seed_from(0);
        let mut prev = Time::ZERO;
        while let Some(e) = shaped.next_emission(&mut rng) {
            assert!(e.at >= prev, "shaper reordered");
            prev = e.at;
            assert!(checker.try_consume(e.at, e.len_bits));
        }
    });
}

/// After any sequence of successful AC3 admissions, re-checking
/// ineq. (19) from scratch over *every* non-empty subset still passes
/// (the incremental candidate-only test loses nothing).
#[test]
fn ac3_incremental_equals_exhaustive() {
    check("ac3_incremental_equals_exhaustive", |g| {
        let n_reqs = g.size(1, 8);
        let reqs: Vec<(u64, u32)> = (0..n_reqs)
            .map(|_| (g.range(8_000, 400_000), g.range(1, 60) as u32))
            .collect();
        let c = 1_536_000u64;
        let mut ac = Ac3Admission::new(c);
        let mut admitted: Vec<(u64, u32, Duration)> = Vec::new();
        for (rate, d_ms) in reqs {
            let d = Duration::from_ms(d_ms as u64);
            if ac.try_admit(rate, 424, d).is_ok() {
                admitted.push((rate, 424, d));
            }
        }
        // From-scratch exhaustive re-check.
        let n = admitted.len();
        for mask in 1u64..(1 << n) {
            let (mut sl, mut sr, mut srd) = (0u128, 0u128, 0u128);
            for (i, (rate, len, d)) in admitted.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    sl += *len as u128;
                    sr += *rate as u128;
                    srd += *rate as u128 * d.as_ps() as u128;
                }
            }
            assert!(
                c as u128 * srd >= sl * sr * lit_sim::PS_PER_SEC as u128,
                "subset {mask:#b} infeasible after the fact"
            );
        }
    });
}

/// Histograms: ccdf_at is monotone non-increasing and dominates the
/// bin-edge CCDF; quantiles bracket the extrema.
#[test]
fn histogram_invariants() {
    check("histogram_invariants", |g| {
        use leave_in_time::analysis::DurationHistogram;
        let n_samples = g.size(1, 300);
        let samples: Vec<u64> = (0..n_samples).map(|_| g.below(2_000_000_000)).collect();
        let mut h = DurationHistogram::new(Duration::from_us(100), 1000);
        for &s in &samples {
            h.record(Duration::from_ps(s * 1000));
        }
        let mut prev = f64::INFINITY;
        for i in 0..100 {
            let t = Duration::from_us(i * 25);
            let c = h.ccdf_at(t);
            assert!(c <= prev + 1e-12);
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
        for &(edge, frac) in h.ccdf().iter() {
            // ccdf() evaluates *after* the bin; ccdf_at at the same point
            // must dominate (it refuses to exclude the boundary bin).
            assert!(h.ccdf_at(edge - Duration::from_ps(1)) + 1e-12 >= frac);
        }
        assert!(h.quantile(1.0).unwrap() >= h.max().unwrap());
        assert_eq!(h.count(), samples.len() as u64);
    });
}

/// Rule (1.3)-style `Linear` assignments (per-packet d with a class
/// base offset) keep every bound for variable-length shaped traffic.
/// This is the delay-shifting path the earlier properties (which use
/// `d = L/r`) never exercise: d may exceed L/r (a "donor" session in
/// a high class), and α is strictly positive.
#[test]
fn linear_assignment_bounds_hold() {
    check("linear_assignment_bounds_hold", |g| {
        let trace = gen_trace(g, 60);
        let cross = gen_trace(g, 60);
        let hops = g.size(1, 4);
        let base_us = g.below(20_000);
        let num_factor = g.range(1, 4); // slope numerator = factor · C
        let (rate, b0) = (48_000u64, 2 * 424u64);
        let c = 1_536_000u64;
        // d_i = L_i · (factor·C)/(r·C) + base = factor·L_i/r + base ≥ L_i/r.
        let assignment = DelayAssignment::Linear {
            num: num_factor * c,
            den: rate as u128 * c as u128,
            base: Duration::from_us(base_us),
        };
        let mut b = NetworkBuilder::new().seed(6);
        let nodes = b.tandem(hops, LinkParams::paper_t1());
        let mut spec = SessionSpec::atm(SessionId(0), rate);
        spec.min_len_bits = 1;
        spec.delay = assignment;
        let tagged = b.add_session(
            spec,
            &nodes,
            Box::new(ShapedSource::new(TraceSource::from_pairs(trace), rate, b0)),
        );
        b.add_session(
            SessionSpec::atm(SessionId(0), c - rate),
            &nodes,
            Box::new(TraceSource::from_pairs(cross)),
        );
        let mut net = b.build(&LitDiscipline::factory());
        net.run_until(Time::from_secs(3_000));
        let st = net.session_stats(tagged);
        assert!(st.delivered > 0);
        let pb = PathBounds::for_session(&net, tagged);
        assert!(pb.alpha_ps() >= 0, "slope >= 1/r means alpha >= 0");
        let bound = pb.delay_bound_token_bucket(b0);
        assert!(
            st.max_delay().unwrap() < bound,
            "max {} !< bound {}",
            st.max_delay().unwrap(),
            bound
        );
        assert!(st.max_excess().unwrap() < pb.shift_ps());
    });
}
