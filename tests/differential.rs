//! Differential fuzzing as a tier-1 test: a short campaign of random
//! admission-valid scenarios, each run three ways (LiT/heap with the
//! counting conformance oracle, LiT/calendar, VirtualClock/heap) and
//! compared packet-for-packet. See `lit_repro::fuzz` for the generator
//! and the `fuzz_diff` binary in `lit-bench` for long campaigns.

#![forbid(unsafe_code)]

use lit_repro::fuzz;
use lit_repro::scenario::Scenario;

/// Campaign seed for this test. Any failure prints the case seed; replay
/// it with `fuzz_diff --seed <campaign> --cases 1` after reproducing the
/// index, or directly from the minimized `.scn` the campaign writes.
const CAMPAIGN_SEED: u64 = 0x1995_0720;

#[test]
fn sixty_random_scenarios_agree_across_backends_and_disciplines() {
    let dir = std::env::temp_dir().join("lit_diff_failures");
    let report = fuzz::campaign(CAMPAIGN_SEED, 60, None, &dir);
    assert_eq!(report.cases, 60);
    assert!(
        report.failures.is_empty(),
        "divergences: {:?}",
        report.failures
    );
}

#[test]
fn minimized_failures_replay_from_text() {
    // The failure artifacts must be replayable: a generated scenario
    // serialized with to_text() and re-parsed runs to the same result.
    for case in 0..4 {
        let sc = fuzz::generate(CAMPAIGN_SEED.wrapping_add(case));
        let back = Scenario::parse(&sc.to_text()).expect("serialized scenario parses");
        let (a, ids_a) = sc.run();
        let (b, ids_b) = back.run();
        for (x, y) in ids_a.iter().zip(&ids_b) {
            assert_eq!(
                a.session_stats(*x).delivered,
                b.session_stats(*y).delivered,
                "case {case}"
            );
            assert_eq!(
                a.session_stats(*x).max_delay(),
                b.session_stats(*y).max_delay(),
                "case {case}"
            );
        }
    }
}

#[test]
fn shrink_keeps_failures_failing_and_scenarios_valid() {
    // shrink() on a PASSING case must terminate and return a scenario
    // that still parses/runs (it can't make a passing case fail).
    let sc = fuzz::generate(7);
    let min = fuzz::shrink(sc.clone());
    assert!(fuzz::check(&min).is_ok());
    assert!(!min.to_text().is_empty());
}
