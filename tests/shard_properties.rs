//! Property tests for the sharded executor — DESIGN.md §12.
//!
//! The hard requirement is that the shard count is invisible in the
//! results: for *any* acyclic topology and traffic mix, running the
//! lookahead-windowed engine at k shards must produce the same delivered
//! packets, per-session statistics, event counts and oracle verdicts as
//! any other k — and, on collision-free traffic, as the scalar engine.
//! These properties drive randomly generated tandems and fan-in trees
//! through both engines and compare everything a user can observe.
//!
//! Two comparison regimes, deliberately distinct:
//!
//! * **sharded(k₁) ≡ sharded(k₂)** holds for *arbitrary* traffic: the
//!   sharded engine dispatches same-instant groups in a canonical
//!   content-keyed order, so its results depend only on event content,
//!   never on shard boundaries.
//! * **scalar ≡ sharded(k)** is asserted on staggered traffic (distinct
//!   per-session offsets, one shared gap), where no two network events
//!   of different sessions share an instant, making the scalar engine's
//!   heap-FIFO order and the canonical order agree event for event.
//!
//! Case count: `PROPTEST_CASES` env var (default 24). A failing case
//! prints its seed — replay with `LIT_PROP_SEED=<seed>`.

#![forbid(unsafe_code)]

use leave_in_time::core::{install_oracle_bounds, LitDiscipline};
use leave_in_time::net::{
    LinkParams, Network, NetworkBuilder, NodeId, OracleConfig, OracleMode, SessionId, SessionSpec,
    StatsConfig,
};
use leave_in_time::prelude::*;
use leave_in_time::traffic::{DeterministicSource, TraceSource};
use lit_prop::{check, Gen};

/// Everything a user can observe about a finished network, as one string.
fn fingerprint(net: &mut Network) -> String {
    let mut out = String::new();
    let drain_failures = net.oracle_drain_check();
    for i in 0..net.num_sessions() {
        let st = net.session_stats(SessionId(i as u32));
        out.push_str(&format!("session {i}: {st:?}\n"));
    }
    for n in 0..net.num_nodes() {
        let st = net.node_stats(NodeId(n as u32));
        out.push_str(&format!("node {n}: {st:?}\n"));
    }
    out.push_str(&format!(
        "events {} oracle {:?} drain {}\n",
        net.event_count(),
        net.oracle_totals(),
        drain_failures
    ));
    out
}

/// A random acyclic topology: either a tandem of 2–12 nodes or a fan-in
/// tree (two branches merging into a faster trunk). Returns the builder
/// plus the set of routes sessions may ride.
fn gen_topology(g: &mut Gen, b: &mut NetworkBuilder) -> Vec<Vec<NodeId>> {
    if g.bool() {
        let n = g.size(2, 12);
        let nodes = b.tandem(n, LinkParams::paper_t1());
        // Full route plus suffixes starting at random hops (half-open
        // draw: a 2-node tandem only ever yields the full route).
        let mut routes = vec![nodes.clone()];
        for _ in 0..2 {
            let start = if n > 2 { g.size(0, n - 2) } else { 0 };
            routes.push(nodes[start..].to_vec());
        }
        routes
    } else {
        let branch = |b: &mut NetworkBuilder, g: &mut Gen| -> Vec<NodeId> {
            (0..g.size(2, 4))
                .map(|_| b.add_node(LinkParams::paper_t1()))
                .collect()
        };
        let left = branch(b, g);
        let right = branch(b, g);
        let trunk: Vec<NodeId> = (0..g.size(2, 4))
            .map(|_| {
                b.add_node(LinkParams {
                    rate_bps: 3_072_000,
                    ..LinkParams::paper_t1()
                })
            })
            .collect();
        let mk = |branch: &[NodeId]| -> Vec<NodeId> {
            branch.iter().chain(trunk.iter()).copied().collect()
        };
        vec![mk(&left), mk(&right)]
    }
}

/// An arbitrary packet trace: cumulative ps gaps up to 20 ms, lengths
/// 64..=424 bits.
fn gen_trace(g: &mut Gen, max_len: usize) -> Vec<(Time, u32)> {
    let n = g.size(1, max_len);
    let mut t = Time::ZERO;
    (0..n)
        .map(|_| {
            t += Duration::from_ps(g.below(20_000_000_000));
            (t, g.range(64, 425) as u32)
        })
        .collect()
}

/// Shard-count invariance on arbitrary traffic: the same scenario built
/// at two different shard counts (2..=8) is byte-identical, including
/// oracle counters when the conformance oracle is armed.
#[test]
fn sharded_results_independent_of_shard_count() {
    check("sharded_results_independent_of_shard_count", |g| {
        let seed = g.u64();
        let n_sessions = g.size(1, 5);
        let oracle = g.bool();
        let traces: Vec<Vec<(Time, u32)>> = (0..n_sessions).map(|_| gen_trace(g, 30)).collect();
        let route_picks: Vec<u64> = (0..n_sessions).map(|_| g.u64()).collect();
        let rates: Vec<u64> = (0..n_sessions)
            .map(|_| *g.pick(&[16_000u64, 32_000, 64_000]))
            .collect();
        let horizon = Time::from_ms(g.range(200, 1_200));
        let shards_a = g.range(2, 9) as usize;
        let shards_b = g.range(2, 9) as usize;

        let run = |shards: usize| {
            let mut b = NetworkBuilder::new()
                .seed(seed)
                .shards(shards)
                .stats(StatsConfig {
                    delivery_log_cap: 32,
                    ..StatsConfig::default()
                });
            if oracle {
                b = b.oracle(OracleConfig::new(OracleMode::Count));
            }
            // Re-derive the identical topology from the case's generator
            // stream: Gen is deterministic in its seed.
            let mut tg = Gen::new(seed);
            let routes = gen_topology(&mut tg, &mut b);
            for i in 0..n_sessions {
                let route = &routes[route_picks[i] as usize % routes.len()];
                b.add_session(
                    SessionSpec::atm(SessionId(0), rates[i]),
                    route,
                    Box::new(TraceSource::from_pairs(traces[i].clone())),
                );
            }
            let mut net = b.build(&LitDiscipline::factory());
            if oracle {
                install_oracle_bounds(&mut net);
            }
            net.run_until(horizon);
            fingerprint(&mut net)
        };
        assert_eq!(
            run(shards_a),
            run(shards_b),
            "sharded engine diverges between {shards_a} and {shards_b} shards"
        );
    });
}

/// Scalar equivalence on staggered traffic: one shared gap, distinct
/// per-session offsets — no two sessions' events ever share an instant,
/// so the scalar engine's FIFO order and the sharded engine's canonical
/// order must coincide, and so must every statistic.
#[test]
fn staggered_scenarios_match_scalar_engine() {
    check("staggered_scenarios_match_scalar_engine", |g| {
        let seed = g.u64();
        let n_sessions = g.size(1, 6);
        let gap_us = *g.pick(&[9_000u64, 13_250, 20_000]);
        let step_ns = g.range(11, 97);
        let oracle = g.bool();
        let jc = g.bool();
        let route_picks: Vec<u64> = (0..n_sessions).map(|_| g.u64()).collect();
        let horizon = Time::from_ms(g.range(300, 1_500));
        let shards = g.range(2, 9) as usize;

        let run = |shards: usize| {
            let mut b = NetworkBuilder::new()
                .seed(seed)
                .shards(shards)
                .stats(StatsConfig {
                    delivery_log_cap: 32,
                    ..StatsConfig::default()
                });
            if oracle {
                b = b.oracle(OracleConfig::new(OracleMode::Count));
            }
            let mut tg = Gen::new(seed);
            let routes = gen_topology(&mut tg, &mut b);
            for i in 0..n_sessions {
                let route = &routes[route_picks[i] as usize % routes.len()];
                let mut spec = SessionSpec::atm(SessionId(0), 32_000);
                if jc {
                    spec = spec.with_jitter_control();
                }
                b.add_session(
                    spec,
                    route,
                    Box::new(
                        DeterministicSource::new(Duration::from_us(gap_us), 424)
                            .with_offset(Duration::from_ns(1 + (i as u64 + 1) * step_ns)),
                    ),
                );
            }
            let mut net = b.build(&LitDiscipline::factory());
            if oracle {
                install_oracle_bounds(&mut net);
            }
            net.run_until(horizon);
            (net.shard_count(), fingerprint(&mut net))
        };
        let (k, scalar) = run(1);
        assert_eq!(k, 1, "shards(1) must run the scalar engine");
        let (k, sharded) = run(shards);
        assert!(k > 1, "{shards} shards degraded to scalar");
        assert_eq!(
            sharded, scalar,
            "sharded({shards}) diverges from the scalar engine"
        );
    });
}

/// Windowing is insensitive to horizon placement: chopping `run_until`
/// into random segments produces the same results as one shot, at any
/// shard count.
#[test]
fn segmented_horizons_are_invariant() {
    check("segmented_horizons_are_invariant", |g| {
        let seed = g.u64();
        let shards = g.range(2, 9) as usize;
        let n_segments = g.size(2, 6);
        let cuts: Vec<u64> = (0..n_segments).map(|_| g.range(50, 900)).collect();
        let total: u64 = cuts.iter().sum();

        let build = || {
            let mut b = NetworkBuilder::new().seed(seed).shards(shards);
            let mut tg = Gen::new(seed);
            let routes = gen_topology(&mut tg, &mut b);
            for (i, route) in routes.iter().enumerate() {
                b.add_session(
                    SessionSpec::atm(SessionId(0), 32_000),
                    route,
                    Box::new(
                        DeterministicSource::new(Duration::from_us(13_250), 424)
                            .with_offset(Duration::from_ns(1 + (i as u64 + 1) * 37)),
                    ),
                );
            }
            b.build(&LitDiscipline::factory())
        };
        let mut one_shot = build();
        one_shot.run_until(Time::from_ms(total));
        let want = fingerprint(&mut one_shot);
        let mut stepped = build();
        let mut at = 0u64;
        for c in &cuts {
            at += c;
            stepped.run_until(Time::from_ms(at));
        }
        assert_eq!(fingerprint(&mut stepped), want);
    });
}
