//! Delay-jitter control in action (the paper's Figure 8, in miniature).
//!
//! ```sh
//! cargo run --example jitter_control
//! ```
//!
//! Two identical voice-like ON-OFF sessions cross five loaded T1 hops.
//! One requests delay-jitter control (a delay regulator at every hop past
//! the first), the other does not. Jitter collapses from tens of
//! milliseconds to about one packet time — in exchange for a mean delay
//! pushed toward the delay *bound* (regulated packets ride close to the
//! worst case by design).

#![forbid(unsafe_code)]

use leave_in_time::core::{LitDiscipline, PathBounds};
use leave_in_time::net::{LinkParams, NetworkBuilder, SessionId, SessionSpec};
use leave_in_time::prelude::*;
use leave_in_time::traffic::{OnOffConfig, OnOffSource, PoissonSource, ATM_CELL_BITS};

fn main() {
    let mut builder = NetworkBuilder::new().seed(42);
    let nodes = builder.tandem(5, LinkParams::paper_t1());

    let voice = || {
        Box::new(OnOffSource::new(OnOffConfig::paper_voice(
            Duration::from_ms(650),
        ))) as Box<dyn leave_in_time::traffic::Source>
    };

    // The two tagged sessions: identical traffic, different service.
    let plain = builder.add_session(SessionSpec::atm(SessionId(0), 32_000), &nodes, voice());
    let smooth = builder.add_session(
        SessionSpec::atm(SessionId(0), 32_000).with_jitter_control(),
        &nodes,
        voice(),
    );

    // Poisson cross traffic on every hop (fills the rest of each link).
    for node in &nodes {
        builder.add_session(
            SessionSpec::atm(SessionId(0), 1_472_000),
            &[*node],
            Box::new(PoissonSource::new(
                Duration::from_secs_f64(0.28804e-3),
                ATM_CELL_BITS,
            )),
        );
    }

    let mut net = builder.build(&LitDiscipline::factory());
    net.run_until(Time::from_secs(60));

    let dref = Duration::from_bits_at_rate(ATM_CELL_BITS as u64, 32_000);
    println!("Session                  jitter      bound    mean delay");
    println!("---------------------------------------------------------");
    for (name, id, jc) in [
        ("without jitter control", plain, false),
        ("with jitter control   ", smooth, true),
    ] {
        let st = net.session_stats(id);
        let bound = PathBounds::for_session(&net, id).jitter_bound(dref, jc);
        println!(
            "{name}  {:7.3} ms  {:7.3} ms  {:7.3} ms",
            st.jitter().unwrap().as_millis_f64(),
            bound.as_millis_f64(),
            st.mean_delay().unwrap().as_millis_f64(),
        );
        assert!(st.jitter().unwrap() < bound);
    }
    println!();
    println!("Note how control trades mean delay for predictability:");
    println!("regulators hold packets so everyone experiences nearly the");
    println!("same (worst-case-ish) delay — ideal for fixed playback points.");
}
