//! Planning a playback point for a *tolerant* audio application — the use
//! case the paper's introduction motivates and ineq. (16) enables.
//!
//! ```sh
//! cargo run --example tolerant_audio
//! ```
//!
//! A Poisson-ish audio session has **no** finite worst-case delay (its
//! reference-server backlog is unbounded), so a plain delay bound is
//! useless. Leave-in-Time still bounds the delay *distribution*: shift
//! the session's own M/D/1 reference distribution right by β + α. A
//! tolerant receiver that accepts losing a fraction p of packets can then
//! read its playback delay straight off that curve — before ever sending
//! a packet — and compare it afterwards with the simulated truth.

#![forbid(unsafe_code)]

use leave_in_time::analysis::Md1;
use leave_in_time::core::{LitDiscipline, PathBounds};
use leave_in_time::net::{LinkParams, NetworkBuilder, SessionId, SessionSpec};
use leave_in_time::prelude::*;
use leave_in_time::traffic::{PoissonSource, ATM_CELL_BITS};

fn main() {
    // The audio session: 424-bit cells, mean gap 1.5143 ms, reserved
    // 400 kbit/s over five hops (the paper's Figure 9 operating point,
    // rho = 0.7).
    let rate = 400_000u64;
    let gap = Duration::from_secs_f64(1.5143e-3);
    let hops = 5usize;

    let mut builder = NetworkBuilder::new().seed(1234);
    let nodes = builder.tandem(hops, LinkParams::paper_t1());
    let session = builder.add_session(
        SessionSpec::atm(SessionId(0), rate),
        &nodes,
        Box::new(PoissonSource::new(gap, ATM_CELL_BITS)),
    );
    // Competing Poisson cross traffic on every hop.
    for node in &nodes {
        builder.add_session(
            SessionSpec::atm(SessionId(0), 1_136_000),
            &[*node],
            Box::new(PoissonSource::new(
                Duration::from_secs_f64(0.3929e-3),
                ATM_CELL_BITS,
            )),
        );
    }
    let mut net = builder.build(&LitDiscipline::factory());

    // ---- Plan BEFORE running: pure analysis. ------------------------------
    let bounds = PathBounds::for_session(&net, session);
    let service = Duration::from_bits_at_rate(ATM_CELL_BITS as u64, rate);
    let md1 = Md1::from_mean_gap(gap, service);

    println!("tolerance   planned playback delay (analytic bound)");
    println!("----------------------------------------------------");
    let mut plans = Vec::new();
    for loss in [0.01, 0.001, 0.0001] {
        // Smallest d with bound(P(D > d)) <= loss, by scanning.
        let mut d = Duration::ZERO;
        while bounds.delay_ccdf_bound(|t| md1.sojourn_ccdf(t), d) > loss {
            d += Duration::from_us(100);
        }
        println!("   {:>6.2}%   {:7.3} ms", loss * 100.0, d.as_millis_f64());
        plans.push((loss, d));
    }

    // ---- Verify by simulation. ---------------------------------------------
    net.run_until(Time::from_secs(120));
    let st = net.session_stats(session);
    println!();
    println!(
        "simulated {} packets; actual loss at each playback point:",
        st.delivered
    );
    for (loss, d) in plans {
        let actual = st.e2e.ccdf_at(d);
        println!(
            "   planned for {:>6.2}%  ->  measured {:>8.4}% late",
            loss * 100.0,
            actual * 100.0
        );
        // The plan is an upper bound: reality must be no worse.
        assert!(
            actual <= loss * 1.05 + 1e-4,
            "bound violated: {actual} > {loss}"
        );
    }
    println!();
    println!("the bound is safe at every tolerance level: a receiver can");
    println!("commit to a playback point without trusting anyone else's traffic.");
}
