//! Delay shifting with admission-control classes (paper §2 + Figs 14–17).
//!
//! ```sh
//! cargo run --example delay_shifting
//! ```
//!
//! Forty-eight identical 32 kbit/s voice sessions fully reserve three T1
//! hops (48 × 32 kbit/s = C). Six of them are admitted into class 1 of
//! admission control procedure 2 (d = 1.7 ms per hop); the other 42 land
//! in class 2 (d ≈ 15.5 ms per hop). Nobody's reserved rate changes — yet
//! class-1 sessions see a fraction of the end-to-end delay, *paid for* by
//! the class-2 sessions: the paper's notion of shifting delay between
//! sessions.

#![forbid(unsafe_code)]

use leave_in_time::core::{
    ClassedAdmission, DRule, DelayClass, LitDiscipline, PathBounds, Procedure, SessionRequest,
};
use leave_in_time::net::{LinkParams, NetworkBuilder, SessionId, SessionSpec};
use leave_in_time::prelude::*;
use leave_in_time::traffic::{OnOffConfig, OnOffSource, ATM_CELL_BITS};

fn main() {
    const HOPS: usize = 3;
    const SESSIONS: usize = 48; // 48 × 32 kbit/s = the whole T1
    const CLASS1: usize = 6; // sessions admitted to the low-delay class

    let classes = vec![
        DelayClass {
            max_bandwidth_bps: 256_000, // R1: up to 8 voice sessions
            // σ1 must cover Σ L_max/C over class 1: 6 · 0.276 ms = 1.66 ms.
            base_delay: Duration::from_us(1_700),
        },
        DelayClass {
            max_bandwidth_bps: 1_536_000, // R2 = C
            // σ2 must cover all 48 sessions: 48 · 0.276 ms = 13.25 ms.
            base_delay: Duration::from_us(13_250),
        },
    ];

    let mut builder = NetworkBuilder::new().seed(3);
    let nodes = builder.tandem(HOPS, LinkParams::paper_t1());
    let mut admission: Vec<ClassedAdmission> = nodes
        .iter()
        .map(|_| {
            ClassedAdmission::new(Procedure::Proc2, 1_536_000, classes.clone())
                .expect("valid class ladder")
        })
        .collect();

    let req = SessionRequest::new(32_000, ATM_CELL_BITS);
    let mut ids = Vec::new();
    for i in 0..SESSIONS {
        let class = usize::from(i >= CLASS1); // first CLASS1 sessions → class 1
        let hops: Vec<_> = nodes
            .iter()
            .enumerate()
            .map(|(n, node)| {
                let a = admission[n]
                    .try_admit(class, &req, DRule::PerSessionMax)
                    .expect("configuration chosen to pass all tests");
                (node.0, a)
            })
            .collect();
        // Voice-like bursts at 80 % duty: enough contention for the class
        // hierarchy to matter.
        let src = OnOffSource::new(OnOffConfig::paper_voice(Duration::from_ms(88)));
        let id = builder.add_session_with_hops(
            SessionSpec::atm(SessionId(0), 32_000),
            hops,
            Box::new(src),
        );
        ids.push((class, id));
    }

    let mut net = builder.build(&LitDiscipline::factory());
    net.run_until(Time::from_secs(120));

    let dref = Duration::from_bits_at_rate(ATM_CELL_BITS as u64, 32_000);
    let mut worst = [Duration::ZERO; 2];
    let mut sum_ms = [0.0f64; 2];
    let mut bounds = [Duration::ZERO; 2];
    for (class, id) in &ids {
        let st = net.session_stats(*id);
        let bound = PathBounds::for_session(&net, *id).delay_bound(dref);
        let max = st.max_delay().unwrap();
        worst[*class] = worst[*class].max(max);
        sum_ms[*class] += st.mean_delay().unwrap().as_millis_f64();
        bounds[*class] = bound;
        assert!(max < bound, "per-session guarantee violated");
    }

    println!("48 voice sessions, 3 T1 hops fully reserved, AC2 with two classes");
    println!();
    println!("class  sessions  worst max delay  avg mean delay   delay bound");
    println!("---------------------------------------------------------------");
    for c in 0..2 {
        let n = if c == 0 { CLASS1 } else { SESSIONS - CLASS1 };
        println!(
            "{:>5}  {:>8}  {:>12.3} ms  {:>11.3} ms  {:>9.3} ms",
            c + 1,
            n,
            worst[c].as_millis_f64(),
            sum_ms[c] / n as f64,
            bounds[c].as_millis_f64()
        );
    }
    println!();
    assert!(worst[0] < worst[1]);
    println!("same reservations, same traffic — delay shifted by admission class.");
}
