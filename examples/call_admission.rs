//! Call admission: the control plane in front of the scheduler.
//!
//! ```sh
//! cargo run --example call_admission
//! ```
//!
//! A stream of connection *requests* (random routes and rates over the
//! paper's five-node tandem) hits a [`ConnectionManager`]. Whatever passes
//! the per-node admission tests — all-or-nothing along the route, with
//! rollback — becomes a real session in the simulated network; the rest
//! are blocked. After the run, every admitted session is checked against
//! its analytic delay bound: admission control is exactly what makes those
//! bounds *mean* something.

#![forbid(unsafe_code)]

use leave_in_time::core::{ConnectionManager, DRule, LitDiscipline, PathBounds, SessionRequest};
use leave_in_time::net::{LinkParams, NetworkBuilder, SessionId, SessionSpec};
use leave_in_time::prelude::*;
use leave_in_time::traffic::{PoissonSource, ShapedSource, ATM_CELL_BITS};

fn main() {
    const NODES: usize = 5;
    let mut builder = NetworkBuilder::new().seed(2026);
    let _node_ids = builder.tandem(NODES, LinkParams::paper_t1());
    let mut cm = ConnectionManager::one_class(NODES, 1_536_000);
    let mut rng = SimRng::seed_from(99);

    let mut admitted = Vec::new();
    let mut blocked = 0usize;
    let offered = 120usize;
    for _ in 0..offered {
        // Random route [a, b] and a rate from a small menu.
        let a = (rng.below(NODES as u64)) as usize;
        let b = (rng.below(NODES as u64)) as usize;
        let (lo, hi) = (a.min(b), a.max(b));
        let route: Vec<usize> = (lo..=hi).collect();
        let rate = [32_000u64, 64_000, 128_000, 256_000][rng.below(4) as usize];
        let req = SessionRequest::new(rate, ATM_CELL_BITS);
        match cm.establish(&route, 0, req, DRule::PerPacket) {
            Ok(conn) => {
                // Admitted: become a real (shaped, hence conforming)
                // session in the network.
                let depth = 4 * ATM_CELL_BITS as u64;
                let mean_gap = Duration::from_secs_f64(ATM_CELL_BITS as f64 / (0.85 * rate as f64));
                let src =
                    ShapedSource::new(PoissonSource::new(mean_gap, ATM_CELL_BITS), rate, depth);
                let sid = builder.add_session_with_hops(
                    SessionSpec::atm(SessionId(0), rate),
                    conn.hops(),
                    Box::new(src),
                );
                admitted.push((sid, depth));
            }
            Err(_) => blocked += 1,
        }
    }

    println!(
        "offered {offered} connections: admitted {}, blocked {} ({:.1} % blocking)",
        admitted.len(),
        blocked,
        100.0 * blocked as f64 / offered as f64
    );
    for n in 0..NODES {
        println!(
            "  node {n}: committed {:>7} bit/s of 1536000",
            cm.node(n).admitted_rate_bps()
        );
    }

    let mut net = builder.build(&LitDiscipline::factory());
    net.run_until(Time::from_secs(60));

    let mut worst_margin = f64::INFINITY;
    for &(sid, depth) in &admitted {
        let st = net.session_stats(sid);
        if st.delivered == 0 {
            continue;
        }
        let bound = PathBounds::for_session(&net, sid).delay_bound_token_bucket(depth);
        let max = st.max_delay().unwrap();
        assert!(max < bound, "session {sid:?}: {max} !< {bound}");
        worst_margin =
            worst_margin.min((bound.as_millis_f64() - max.as_millis_f64()) / bound.as_millis_f64());
    }
    println!();
    println!(
        "all {} admitted sessions met their delay bounds (tightest margin {:.1} %)",
        admitted.len(),
        worst_margin * 100.0
    );
    println!("blocking at the control plane is the price of those guarantees.");
}
