//! Quickstart: a three-hop Leave-in-Time network with one reserved
//! session and background traffic.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds three T1 nodes in tandem, admits a 64 kbit/s session under
//! admission control procedure 1 (one class, so the scheduler behaves
//! like VirtualClock), runs 30 simulated seconds, and compares the
//! measured end-to-end delay against the analytic bound of ineq. (15).

#![forbid(unsafe_code)]

use leave_in_time::core::{ClassedAdmission, DRule, LitDiscipline, PathBounds, SessionRequest};
use leave_in_time::net::{LinkParams, NetworkBuilder, SessionId, SessionSpec};
use leave_in_time::prelude::*;
use leave_in_time::traffic::{PoissonSource, ShapedSource, ATM_CELL_BITS};

fn main() {
    // --- Topology: three T1 nodes in tandem. ------------------------------
    let mut builder = NetworkBuilder::new().seed(7);
    let nodes = builder.tandem(3, LinkParams::paper_t1());

    // --- Connection establishment. ----------------------------------------
    // One admission controller per node; the session must pass at every
    // hop (the paper's "admission control tests ... in all the nodes along
    // the session's route").
    let mut admission: Vec<ClassedAdmission> = nodes
        .iter()
        .map(|_| ClassedAdmission::one_class(1_536_000))
        .collect();

    let rate = 64_000;
    let req = SessionRequest::new(rate, ATM_CELL_BITS);
    let hops: Vec<_> = nodes
        .iter()
        .enumerate()
        .map(|(n, node)| {
            let assignment = admission[n]
                .try_admit(0, &req, DRule::PerPacket)
                .expect("link has room for 64 kbit/s");
            (node.0, assignment)
        })
        .collect();

    // The session's traffic: Poisson at ~80 % of the reservation, shaped
    // through a (r, 3-cell) token bucket so the closed-form delay bound
    // applies.
    let bucket_depth = 3 * ATM_CELL_BITS as u64;
    let source = ShapedSource::new(
        PoissonSource::new(Duration::from_ms(6), ATM_CELL_BITS),
        rate,
        bucket_depth,
    );
    let session =
        builder.add_session_with_hops(SessionSpec::atm(SessionId(0), rate), hops, Box::new(source));

    // Background: one best-effort-ish heavy Poisson session per hop.
    for node in &nodes {
        let bg_req = SessionRequest::new(1_400_000, ATM_CELL_BITS);
        let a = admission[node.index()]
            .try_admit(0, &bg_req, DRule::PerPacket)
            .expect("background fits");
        builder.add_session_with_hops(
            SessionSpec::atm(SessionId(0), 1_400_000),
            vec![(node.0, a)],
            Box::new(PoissonSource::new(Duration::from_us(310), ATM_CELL_BITS)),
        );
    }

    // --- Run. ---------------------------------------------------------------
    let mut net = builder.build(&LitDiscipline::factory());
    net.run_until(Time::from_secs(30));

    // --- Report. -------------------------------------------------------------
    let stats = net.session_stats(session);
    let bounds = PathBounds::for_session(&net, session);
    let bound = bounds.delay_bound_token_bucket(bucket_depth);

    println!("Leave-in-Time quickstart (3 T1 hops, 64 kbit/s reservation)");
    println!("  packets delivered : {}", stats.delivered);
    println!(
        "  mean delay        : {:7.3} ms",
        stats.mean_delay().unwrap().as_millis_f64()
    );
    println!(
        "  max delay         : {:7.3} ms",
        stats.max_delay().unwrap().as_millis_f64()
    );
    println!(
        "  jitter (max-min)  : {:7.3} ms",
        stats.jitter().unwrap().as_millis_f64()
    );
    println!(
        "  analytic bound    : {:7.3} ms   (ineq. 15: b0/r + beta + alpha)",
        bound.as_millis_f64()
    );
    assert!(
        stats.max_delay().unwrap() < bound,
        "the paper's guarantee must hold"
    );
    println!("  bound holds       : yes");
}
