//! The firewall property: Leave-in-Time isolates sessions, FCFS does not.
//!
//! ```sh
//! cargo run --example firewall
//! ```
//!
//! A polite voice session shares one T1 link with a badly misbehaving
//! neighbor (reserved 32 kbit/s, actually dumping 100-packet bursts).
//! The same scenario runs under FCFS and under Leave-in-Time; only the
//! discipline changes, the traffic and seeds are identical.

#![forbid(unsafe_code)]

use leave_in_time::baselines::FcfsDiscipline;
use leave_in_time::core::{LitDiscipline, PathBounds};
use leave_in_time::net::{DisciplineFactory, LinkParams, NetworkBuilder, SessionId, SessionSpec};
use leave_in_time::prelude::*;
use leave_in_time::traffic::{BurstSource, OnOffConfig, OnOffSource, ATM_CELL_BITS};

fn run(factory: &DisciplineFactory<'_>) -> (Duration, Duration, Duration) {
    let mut builder = NetworkBuilder::new().seed(99);
    let nodes = builder.tandem(1, LinkParams::paper_t1());
    let victim = builder.add_session(
        SessionSpec::atm(SessionId(0), 32_000),
        &nodes,
        Box::new(OnOffSource::new(OnOffConfig::paper_voice(
            Duration::from_ms(88),
        ))),
    );
    // The misbehaver: ~850 kbit/s offered on a 32 kbit/s reservation.
    builder.add_session(
        SessionSpec::atm(SessionId(0), 32_000),
        &nodes,
        Box::new(BurstSource::new(Duration::from_ms(50), 100, ATM_CELL_BITS)),
    );
    let mut net = builder.build(factory);
    net.run_until(Time::from_secs(60));
    let st = net.session_stats(victim);
    let bound = PathBounds::for_session(&net, victim)
        .delay_bound(Duration::from_bits_at_rate(ATM_CELL_BITS as u64, 32_000));
    (st.max_delay().unwrap(), st.mean_delay().unwrap(), bound)
}

fn main() {
    let fcfs = FcfsDiscipline::factory();
    let (fcfs_max, fcfs_mean, _) = run(&fcfs);
    let lit = |l: &LinkParams| {
        Box::new(LitDiscipline::new(*l)) as Box<dyn leave_in_time::net::Discipline>
    };
    let (lit_max, lit_mean, bound) = run(&lit);

    println!("victim session next to a misbehaving burster (same traffic, same seed)");
    println!();
    println!("discipline      max delay      mean delay");
    println!("------------------------------------------");
    println!(
        "FCFS           {:>8.3} ms   {:>8.3} ms",
        fcfs_max.as_millis_f64(),
        fcfs_mean.as_millis_f64()
    );
    println!(
        "Leave-in-Time  {:>8.3} ms   {:>8.3} ms",
        lit_max.as_millis_f64(),
        lit_mean.as_millis_f64()
    );
    println!();
    println!(
        "Leave-in-Time guarantee (ineq. 15): {:.3} ms — independent of the burster.",
        bound.as_millis_f64()
    );
    assert!(lit_max < bound);
    assert!(fcfs_max > lit_max * 2);
}
