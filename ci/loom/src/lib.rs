//! Loom models for the concurrent pieces of `lit-obs`.
//!
//! The production hub (`lit_obs::hub`) pools per-worker `ObsShard`s into
//! one `Mutex<ObsShard>` and claims the pooled result is independent of
//! worker completion order because `ObsShard::merge` is commutative and
//! associative. The models here re-create that submit path under loom's
//! exhaustive scheduler with the *real* `ObsShard`/`merge` code, so every
//! interleaving of worker threads is checked, not just the ones a lucky
//! test run happens to hit.
//!
//! Run with `cd ci/loom && cargo test` (CI-only; needs the network to
//! fetch loom — the offline dev workspace deliberately excludes this
//! crate).

#![forbid(unsafe_code)]

#[cfg(test)]
mod models {
    use lit_obs::metrics::ObsShard;
    use loom::sync::{Arc, Mutex};
    use loom::thread;

    /// A distinguishable shard for worker `w`: one node, one single-hop
    /// session, and a violation label unique to the worker so the merged
    /// result proves every submission landed exactly once.
    fn worker_shard(w: u64) -> ObsShard {
        let mut s = ObsShard::sized(1, &[1]);
        s.violations.insert(format!("worker-{w}"), w + 1);
        s
    }

    /// Mirror of the hub's submit path: lock the pool, merge the shard.
    fn submit(pool: &Mutex<ObsShard>, shard: &ObsShard) {
        pool.lock().unwrap().merge(shard);
    }

    /// Every interleaving of two workers submitting into the shared pool
    /// must produce the same pooled totals the sequential merge does.
    #[test]
    fn hub_merge_is_order_independent() {
        loom::model(|| {
            let pool = Arc::new(Mutex::new(ObsShard::default()));
            let handles: Vec<_> = (0..2u64)
                .map(|w| {
                    let pool = Arc::clone(&pool);
                    thread::spawn(move || submit(&pool, &worker_shard(w)))
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }

            let got = pool.lock().unwrap();
            let mut want = ObsShard::default();
            for w in 0..2u64 {
                want.merge(&worker_shard(w));
            }
            assert_eq!(got.networks, want.networks);
            assert_eq!(got.violations, want.violations);
            assert_eq!(got.violation_total(), 1 + 2);
        });
    }

    /// A worker submitting while another thread snapshots the pool (the
    /// exporter path) must never observe a torn shard: the snapshot is
    /// either before or after the merge, with nothing in between.
    #[test]
    fn hub_snapshot_never_tears() {
        loom::model(|| {
            let pool = Arc::new(Mutex::new(ObsShard::default()));
            let writer = {
                let pool = Arc::clone(&pool);
                thread::spawn(move || submit(&pool, &worker_shard(0)))
            };
            let snap = pool.lock().unwrap().clone();
            assert!(
                snap.networks == 0 || snap.violation_total() == 1,
                "torn snapshot: networks={} violations={}",
                snap.networks,
                snap.violation_total()
            );
            writer.join().unwrap();
            assert_eq!(pool.lock().unwrap().violation_total(), 1);
        });
    }
}
