//! Loom models for the workspace's concurrent protocols: the `lit-obs`
//! hub pool (below) and the sharded executor's barrier/mailbox window
//! protocol (`shard_models`).
//!
//! The production hub (`lit_obs::hub`) pools per-worker `ObsShard`s into
//! one `Mutex<ObsShard>` and claims the pooled result is independent of
//! worker completion order because `ObsShard::merge` is commutative and
//! associative. The models here re-create that submit path under loom's
//! exhaustive scheduler with the *real* `ObsShard`/`merge` code, so every
//! interleaving of worker threads is checked, not just the ones a lucky
//! test run happens to hit.
//!
//! Run with `cd ci/loom && cargo test` (CI-only; needs the network to
//! fetch loom — the offline dev workspace deliberately excludes this
//! crate).

#![forbid(unsafe_code)]

#[cfg(test)]
mod models {
    use lit_obs::metrics::ObsShard;
    use loom::sync::{Arc, Mutex};
    use loom::thread;

    /// A distinguishable shard for worker `w`: one node, one single-hop
    /// session, and a violation label unique to the worker so the merged
    /// result proves every submission landed exactly once.
    fn worker_shard(w: u64) -> ObsShard {
        let mut s = ObsShard::sized(1, &[1]);
        s.violations.insert(format!("worker-{w}"), w + 1);
        s
    }

    /// Mirror of the hub's submit path: lock the pool, merge the shard.
    fn submit(pool: &Mutex<ObsShard>, shard: &ObsShard) {
        pool.lock().unwrap().merge(shard);
    }

    /// Every interleaving of two workers submitting into the shared pool
    /// must produce the same pooled totals the sequential merge does.
    #[test]
    fn hub_merge_is_order_independent() {
        loom::model(|| {
            let pool = Arc::new(Mutex::new(ObsShard::default()));
            let handles: Vec<_> = (0..2u64)
                .map(|w| {
                    let pool = Arc::clone(&pool);
                    thread::spawn(move || submit(&pool, &worker_shard(w)))
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }

            let got = pool.lock().unwrap();
            let mut want = ObsShard::default();
            for w in 0..2u64 {
                want.merge(&worker_shard(w));
            }
            assert_eq!(got.networks, want.networks);
            assert_eq!(got.violations, want.violations);
            assert_eq!(got.violation_total(), 1 + 2);
        });
    }

    /// A worker submitting while another thread snapshots the pool (the
    /// exporter path) must never observe a torn shard: the snapshot is
    /// either before or after the merge, with nothing in between.
    #[test]
    fn hub_snapshot_never_tears() {
        loom::model(|| {
            let pool = Arc::new(Mutex::new(ObsShard::default()));
            let writer = {
                let pool = Arc::clone(&pool);
                thread::spawn(move || submit(&pool, &worker_shard(0)))
            };
            let snap = pool.lock().unwrap().clone();
            assert!(
                snap.networks == 0 || snap.violation_total() == 1,
                "torn snapshot: networks={} violations={}",
                snap.networks,
                snap.violation_total()
            );
            writer.join().unwrap();
            assert_eq!(pool.lock().unwrap().violation_total(), 1);
        });
    }
}

/// Loom models of the sharded executor's window protocol
/// (`crates/net/src/shard.rs`): per-window barrier alignment, atomic
/// `next_event_ps` publication, the bounded-mailbox-plus-spill-lane
/// handoff, and the full multi-window worker loop with its two exits
/// (tmin exhaustion, post-barrier-B abort) under a mid-window panic.
/// Loom provides neither `std::sync::Barrier` nor
/// `std::sync::mpsc`, so the model rebuilds both from loom's `Mutex`,
/// `Condvar` and atomics with the *same* protocol rules the production
/// code follows: sends happen strictly between barriers A and B, drains
/// strictly after barrier B, spill only after the bounded lane fills,
/// and the receiver empties the bounded lane before the spill lane.
#[cfg(test)]
mod shard_models {
    use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use loom::sync::{Arc, Condvar, Mutex};
    use loom::thread;
    use std::collections::VecDeque;

    /// `std::sync::Barrier` stand-in: generation-counted so reuse across
    /// windows is safe under spurious wakeups.
    struct Barrier {
        state: Mutex<(usize, u64)>, // (arrived, generation)
        cv: Condvar,
        n: usize,
    }

    impl Barrier {
        fn new(n: usize) -> Self {
            Barrier {
                state: Mutex::new((0, 0)),
                cv: Condvar::new(),
                n,
            }
        }

        fn wait(&self) {
            let mut g = self.state.lock().unwrap();
            let gen = g.1;
            g.0 += 1;
            if g.0 == self.n {
                g.0 = 0;
                g.1 += 1;
                self.cv.notify_all();
            } else {
                while g.1 == gen {
                    g = self.cv.wait(g).unwrap();
                }
            }
        }
    }

    /// `sync_channel(cap)` stand-in with the production spill rule: once
    /// a `try_send` hits capacity, the rest of the window's handoffs go
    /// to the spill lane, and the receiver drains channel-then-spill so
    /// per-pair FIFO order survives the overflow.
    struct Mailbox {
        chan: Mutex<VecDeque<u64>>,
        spill: Mutex<Vec<u64>>,
        cap: usize,
    }

    impl Mailbox {
        fn new(cap: usize) -> Self {
            Mailbox {
                chan: Mutex::new(VecDeque::new()),
                spill: Mutex::new(Vec::new()),
                cap,
            }
        }

        /// Sender side; `spilling` is the sender-local per-window flag.
        fn send(&self, v: u64, spilling: &mut bool) {
            if !*spilling {
                let mut c = self.chan.lock().unwrap();
                if c.len() < self.cap {
                    c.push_back(v);
                    return;
                }
                *spilling = true;
            }
            self.spill.lock().unwrap().push(v);
        }

        /// Receiver side, called only after barrier B.
        fn drain(&self) -> Vec<u64> {
            let mut out: Vec<u64> = self.chan.lock().unwrap().drain(..).collect();
            out.extend(self.spill.lock().unwrap().drain(..));
            out
        }
    }

    /// One full window round-trip between two shards: both publish their
    /// next event time, agree on `tmin` from the same snapshot, the
    /// sender overflows the mailbox into the spill lane, and after
    /// barrier B the receiver sees every handoff in FIFO order. Checked
    /// under every interleaving loom can schedule.
    #[test]
    fn window_handoff_is_fifo_and_tmin_agrees() {
        loom::model(|| {
            let barrier = Arc::new(Barrier::new(2));
            let mailbox = Arc::new(Mailbox::new(2));
            let next_ts = Arc::new([AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)]);

            let sender = {
                let (barrier, mailbox, next_ts) = (
                    Arc::clone(&barrier),
                    Arc::clone(&mailbox),
                    Arc::clone(&next_ts),
                );
                thread::spawn(move || {
                    next_ts[0].store(10, Ordering::SeqCst);
                    barrier.wait(); // A
                    let tmin = next_ts
                        .iter()
                        .map(|a| a.load(Ordering::SeqCst))
                        .min()
                        .unwrap();
                    // Window body: 4 handoffs through a capacity-2 lane.
                    let mut spilling = false;
                    for v in 1..=4u64 {
                        mailbox.send(v, &mut spilling);
                    }
                    assert!(spilling, "capacity 2 must overflow on 4 sends");
                    barrier.wait(); // B
                    tmin
                })
            };

            next_ts[1].store(20, Ordering::SeqCst);
            barrier.wait(); // A
            let tmin = next_ts
                .iter()
                .map(|a| a.load(Ordering::SeqCst))
                .min()
                .unwrap();
            barrier.wait(); // B
            // Post-barrier drain: every pre-barrier send is visible, in
            // order, channel contents ahead of spilled overflow.
            assert_eq!(mailbox.drain(), vec![1, 2, 3, 4]);
            let sender_tmin = sender.join().unwrap();
            assert_eq!(tmin, 10, "receiver must see the sender's publication");
            assert_eq!(sender_tmin, tmin, "shards disagree on the window floor");
        });
    }

    /// The production worker loop of `ShardedNet::run_until`, windows
    /// and all, with one shard "panicking" (trapping a payload and
    /// flagging the shared abort) partway through a window. Mirrors the
    /// production break conditions exactly: the *only* pre-window exit
    /// is a pure function of the barrier-A `next_ts` snapshot (`tmin`
    /// exhausted), and abort is checked *only* after barrier B. A
    /// pre-window `abort` load — which an earlier revision had — lets a
    /// slow survivor observe a sibling's mid-window store and break
    /// before barrier B while the flagging shard is already parked
    /// there: a permanent deadlock this multi-window model exists to
    /// exhibit (loom reports it as every thread blocked). Running the
    /// loop over two windows keeps that interleaving inside the
    /// explored state space instead of outside it.
    struct AbortLoop {
        barrier: Barrier,
        next_ts: [AtomicU64; 2],
        abort: AtomicBool,
        payload: Mutex<Option<&'static str>>,
    }

    /// One shard's worker loop: events at t = 10 and t = 20, horizon 100,
    /// lookahead 5 (so the two events land in different windows).
    /// `fail_at_window` simulates a panic trapped inside that window's
    /// body. Returns (windows fully completed, exited via abort).
    fn abort_loop_worker(lp: &AbortLoop, id: usize, fail_at_window: Option<usize>) -> (usize, bool) {
        const UNTIL: u64 = 100;
        const LOOKAHEAD: u64 = 5;
        let mut pending: VecDeque<u64> = [10u64, 20].into_iter().collect();
        let mut window = 0usize;
        loop {
            lp.next_ts[id].store(
                pending.front().copied().unwrap_or(u64::MAX),
                Ordering::SeqCst,
            );
            lp.barrier.wait(); // A
            let tmin = lp
                .next_ts
                .iter()
                .map(|a| a.load(Ordering::SeqCst))
                .min()
                .unwrap();
            // Pure function of the common snapshot — no abort load here.
            if tmin == u64::MAX || tmin > UNTIL {
                return (window, false);
            }
            // Window body: consume local events strictly below the horizon.
            while let Some(&t) = pending.front() {
                if t < tmin.saturating_add(LOOKAHEAD) {
                    pending.pop_front();
                } else {
                    break;
                }
            }
            if fail_at_window == Some(window) {
                lp.payload.lock().unwrap().get_or_insert("boom");
                lp.abort.store(true, Ordering::SeqCst);
            }
            lp.barrier.wait(); // B
            if lp.abort.load(Ordering::SeqCst) {
                return (window, true);
            }
            window += 1;
        }
    }

    #[test]
    fn panic_abort_exits_every_shard_on_an_aligned_barrier() {
        loom::model(|| {
            let lp = Arc::new(AbortLoop {
                barrier: Barrier::new(2),
                next_ts: [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)],
                abort: AtomicBool::new(false),
                payload: Mutex::new(None),
            });

            let failing = {
                let lp = Arc::clone(&lp);
                // Shard 0 "panics" inside its second window (index 1).
                thread::spawn(move || abort_loop_worker(&lp, 0, Some(1)))
            };
            let survivor = abort_loop_worker(&lp, 1, None);
            let failed = failing.join().unwrap();

            // Both exit via the post-barrier-B abort check, in the same
            // window — nobody is left parked and nobody runs past the
            // flagged window.
            assert_eq!(survivor, (1, true), "survivor missed the aligned abort exit");
            assert_eq!(failed, (1, true));
            assert_eq!(*lp.payload.lock().unwrap(), Some("boom"));
        });
    }

    /// The clean-exhaustion exit of the same loop: with no failure both
    /// shards drain both windows and leave on the tmin == MAX branch,
    /// never observing an abort.
    #[test]
    fn window_loop_exhausts_cleanly_without_abort() {
        loom::model(|| {
            let lp = Arc::new(AbortLoop {
                barrier: Barrier::new(2),
                next_ts: [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)],
                abort: AtomicBool::new(false),
                payload: Mutex::new(None),
            });
            let other = {
                let lp = Arc::clone(&lp);
                thread::spawn(move || abort_loop_worker(&lp, 0, None))
            };
            assert_eq!(abort_loop_worker(&lp, 1, None), (2, false));
            assert_eq!(other.join().unwrap(), (2, false));
            assert!(lp.payload.lock().unwrap().is_none());
        });
    }
}
