//! # leave-in-time — facade crate
//!
//! One-stop re-export of the whole Leave-in-Time workspace, so examples and
//! downstream users can depend on a single crate:
//!
//! ```
//! use leave_in_time::prelude::*;
//! ```
//!
//! The layering underneath (each crate usable on its own):
//!
//! * [`sim`] — deterministic discrete-event kernel (time, event queue, RNG);
//! * [`traffic`] — ON-OFF / Poisson / Deterministic / token-bucket sources;
//! * [`net`] — packet network substrate and the [`net::Discipline`] trait;
//! * [`core`] — the paper's contribution: the Leave-in-Time discipline,
//!   delay regulators, admission control, and analytic service bounds;
//! * [`baselines`] — FCFS, VirtualClock, WFQ, SCFQ, Stop-and-Go;
//! * [`analysis`] — M/D/1 delay distribution, histograms, CCDFs;
//! * [`obs`] — zero-cost-when-off observability: metrics registry,
//!   packet-lifecycle tracer, Chrome `trace_event` export.

#![forbid(unsafe_code)]

pub use lit_analysis as analysis;
pub use lit_baselines as baselines;
pub use lit_core as core;
pub use lit_net as net;
pub use lit_obs as obs;
pub use lit_sim as sim;
pub use lit_traffic as traffic;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use lit_sim::{Duration, EventQueue, SeedSeq, SimRng, Time};
}
